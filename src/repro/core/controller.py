"""The PowerDial heart-rate controller (paper Section 2.3.2, Eq. 2–8).

The controller models application performance as ``h(t+1) = b * s(t)``
where ``b`` is the baseline speed (heart rate with all knobs at their
defaults) and ``s(t)`` the applied speedup.  It closes the loop with the
integral law

    e(t) = g - h(t)
    s(t) = s(t-1) + e(t) / b

which (Eq. 5–8) gives the closed-loop transfer function ``F_loop(z) = 1/z``:
unit steady-state gain (convergence to the target ``g``), a single pole at
``z = 0`` (stability, no oscillation, deadbeat convergence).  The module
also provides the Z-domain analysis helpers used to demonstrate those
properties, generalized to an arbitrary pole so tests can verify the
formulas rather than just the constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "HeartRateController",
    "ClosedLoopAnalysis",
    "analyze_closed_loop",
    "convergence_time",
    "ControllerError",
]


class ControllerError(ValueError):
    """Raised for invalid controller configuration or inputs."""


class HeartRateController:
    """Integral controller converting heart-rate error into a speedup.

    Args:
        target_rate: Desired heart rate ``g`` (beats/second).
        baseline_rate: Baseline speed ``b`` — the heart rate with all knobs
            at their default settings on the *reference* platform.
        min_speedup: Lower clamp on the commanded speedup.  The default of
            1.0 reflects that the baseline is the highest-QoS setting; when
            the platform is faster than needed, PowerDial returns to the
            baseline rather than slowing below it.
        max_speedup: Optional upper clamp (``s_max`` from the knob table);
            the integrator saturates there to avoid windup when the target
            is unreachable.
    """

    def __init__(
        self,
        target_rate: float,
        baseline_rate: float,
        min_speedup: float = 1.0,
        max_speedup: float | None = None,
    ) -> None:
        if target_rate <= 0:
            raise ControllerError(f"target rate must be positive, got {target_rate!r}")
        if baseline_rate <= 0:
            raise ControllerError(
                f"baseline rate must be positive, got {baseline_rate!r}"
            )
        if min_speedup <= 0:
            raise ControllerError(f"min speedup must be positive, got {min_speedup!r}")
        if max_speedup is not None and max_speedup < min_speedup:
            raise ControllerError(
                f"max speedup {max_speedup!r} below min speedup {min_speedup!r}"
            )
        self._target = float(target_rate)
        self._baseline = float(baseline_rate)
        self._min_speedup = float(min_speedup)
        self._max_speedup = None if max_speedup is None else float(max_speedup)
        self._speedup = max(1.0, self._min_speedup)
        self._last_error = 0.0

    @property
    def target_rate(self) -> float:
        """The setpoint ``g``."""
        return self._target

    @target_rate.setter
    def target_rate(self, value: float) -> None:
        if value <= 0:
            raise ControllerError(f"target rate must be positive, got {value!r}")
        self._target = float(value)

    @property
    def baseline_rate(self) -> float:
        """The model gain ``b``."""
        return self._baseline

    @property
    def speedup(self) -> float:
        """The most recently commanded speedup ``s(t)``."""
        return self._speedup

    @property
    def last_error(self) -> float:
        """The most recent error ``e(t) = g - h(t)``."""
        return self._last_error

    def update(self, heart_rate: float) -> float:
        """Observe ``h(t)`` and return the new commanded speedup ``s(t)``.

        Implements Eq. 3–4 with anti-windup clamping to
        ``[min_speedup, max_speedup]``.
        """
        if heart_rate < 0:
            raise ControllerError(f"heart rate must be >= 0, got {heart_rate!r}")
        self._last_error = self._target - heart_rate
        speedup = self._speedup + self._last_error / self._baseline
        speedup = max(self._min_speedup, speedup)
        if self._max_speedup is not None:
            speedup = min(self._max_speedup, speedup)
        self._speedup = speedup
        return speedup

    def reset(self) -> None:
        """Return the integrator to the baseline operating point."""
        self._speedup = max(1.0, self._min_speedup)
        self._last_error = 0.0

    def export_state(self) -> tuple[float, float]:
        """The integrator state ``(s(t), e(t))`` for a warm handoff.

        Together with :meth:`restore_state` this is what lets a live
        migration move the controller's learned operating point instead
        of restarting the integrator from the baseline.
        """
        return (self._speedup, self._last_error)

    def restore_state(self, state: tuple[float, float]) -> None:
        """Adopt another controller's ``(s(t), e(t))`` integrator state.

        The restored speedup is clamped to this controller's
        ``[min_speedup, max_speedup]`` range, so a snapshot can only be
        replayed into an operating point this controller could itself
        have reached.
        """
        speedup, last_error = state
        speedup = max(self._min_speedup, float(speedup))
        if self._max_speedup is not None:
            speedup = min(self._max_speedup, speedup)
        self._speedup = speedup
        self._last_error = float(last_error)


@dataclass(frozen=True)
class ClosedLoopAnalysis:
    """Z-domain properties of the closed loop (Eq. 5–8).

    Attributes:
        poles: Poles of ``F_loop(z)``.
        steady_state_gain: ``F_loop(1)``; 1.0 means the loop converges to
            the target with zero steady-state error.
        stable: True when every pole has magnitude < 1.
        convergence_time: Estimated settling time ``t_c ~ -4 / log10(|p_d|)``
            in control periods (0 for a deadbeat pole at the origin).
    """

    poles: tuple[float, ...]
    steady_state_gain: float
    stable: bool
    convergence_time: float


def convergence_time(dominant_pole: float) -> float:
    """Settling-time estimate ``t_c ~ -4 / log10(|p_d|)`` from [24].

    A pole at the origin converges "almost instantaneously" (0 periods); a
    pole on the unit circle never settles (``inf``).
    """
    magnitude = abs(dominant_pole)
    if magnitude >= 1.0:
        return math.inf
    if magnitude == 0.0:
        return 0.0
    return -4.0 / math.log10(magnitude)


def analyze_closed_loop(pole: float = 0.0) -> ClosedLoopAnalysis:
    """Analyze the closed loop ``F_loop(z) = (1 - p) / (z - p)``.

    With the paper's controller the pole ``p`` is exactly 0 and
    ``F_loop(z) = 1/z``; the generalized form lets tests explore how a
    mis-modeled gain (``b`` wrong by a factor ``k`` shifts the pole to
    ``1 - k``) degrades convergence.
    """
    gain = 1.0  # (1 - p) / (1 - p): unit DC gain for any stable pole.
    if abs(pole) >= 1.0:
        gain = math.inf if pole != 1.0 else math.nan
    return ClosedLoopAnalysis(
        poles=(pole,),
        steady_state_gain=gain,
        stable=abs(pole) < 1.0,
        convergence_time=convergence_time(pole),
    )
