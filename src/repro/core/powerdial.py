"""The PowerDial facade: parameters in, controlled application out.

Implements the Figure 1 workflow end to end:

1. **Parameter identification** — the application declares its knobbable
   parameters and value ranges.
2. **Dynamic knob identification** — influence tracing locates the control
   variables and records their values per combination (Section 2.1).
3. **Dynamic knob calibration** — training runs measure each combination's
   speedup and QoS loss; Pareto-optimal settings survive (Section 2.2).
4. **Dynamic knob insertion + runtime control** — a
   :class:`~repro.core.runtime.PowerDialRuntime` pokes recorded values into
   the address space under heart-rate feedback (Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.apps.base import Application, run_job
from repro.core.actuator import ActuationPolicy
from repro.core.calibration import CalibrationResult, calibrate
from repro.core.knobs import KnobSpace, KnobTable
from repro.core.runtime import PowerDialRuntime
from repro.hardware.machine import Machine
from repro.tracing.report import ControlVariableReport, render_report
from repro.tracing.tracer import ControlVariableSet, identify_control_variables

__all__ = ["PowerDialSystem", "build_powerdial", "measure_baseline_rate"]


@dataclass
class PowerDialSystem:
    """A fully built PowerDial deployment for one application.

    Attributes:
        app_factory: Builds application instances.
        knob_space: The explored parameter combinations.
        control_set: Identified control variables and recorded values.
        calibration: The measured trade-off space.
        table: The calibrated, Pareto-restricted knob table.
        report: The developer-facing control-variable report.
    """

    app_factory: Callable[[], Application]
    knob_space: KnobSpace
    control_set: ControlVariableSet
    calibration: CalibrationResult
    table: KnobTable
    report: ControlVariableReport

    def runtime(
        self,
        machine: Machine,
        target_rate: float,
        baseline_rate: float | None = None,
        policy: ActuationPolicy = ActuationPolicy.MINIMAL_SPEEDUP,
        quantum_beats: int = 20,
        controller: Any | None = None,
    ) -> PowerDialRuntime:
        """Create a controlled runtime on ``machine`` at ``target_rate``.

        ``controller`` optionally replaces the paper's integral decision
        mechanism with any :class:`~repro.control.alternatives.
        SpeedupController` (PID, heuristic step, ...).
        """
        return PowerDialRuntime(
            app=self.app_factory(),
            table=self.table,
            machine=machine,
            target_rate=target_rate,
            baseline_rate=baseline_rate,
            policy=policy,
            quantum_beats=quantum_beats,
            controller=controller,
        )


def measure_baseline_rate(
    app_factory: Callable[[], Application],
    job: Any,
    machine: Machine,
    configuration: Mapping[str, Any] | None = None,
) -> float:
    """Measure the baseline-configuration heart rate on ``machine``.

    Replicates the paper's setup step: "the minimum and maximum heart rate
    are both set to the average heart rate measured for the application
    using the default configuration parameters."

    Args:
        app_factory: Builds the application.
        job: The input to measure over.
        machine: The platform whose speed defines the rate.
        configuration: The baseline parameter settings.  Defaults to the
            application's declared default; pass the knob table's baseline
            configuration when the explored knob space differs from the
            full application space.
    """
    app = app_factory()
    if configuration is None:
        configuration = app.default_configuration().as_dict()
    outputs, work, _ = run_job(app, dict(configuration), job)
    if not outputs:
        raise ValueError("job produced no main-loop items")
    seconds = machine.processor.seconds_for_work(work, threads=app.threads())
    seconds *= machine.load_factor
    return len(outputs) / seconds


def build_powerdial(
    app_factory: Callable[[], Application],
    training_jobs: Sequence[Any],
    knob_space: KnobSpace | None = None,
    qos_cap: float | None = None,
    trace_job: Any | None = None,
    trace_iterations: int = 3,
) -> PowerDialSystem:
    """Run the full PowerDial workflow and return the built system.

    Args:
        app_factory: Builds fresh application instances.
        training_jobs: Representative inputs for calibration.
        knob_space: Parameter combinations to explore (default: the
            application's declared space).
        qos_cap: Optional bound on acceptable QoS loss.
        trace_job: Input used for influence tracing (default: the first
            training job).
        trace_iterations: Main-loop iterations to execute while tracing.

    Raises:
        KnobRejectionError: If the control-variable checks fail.
    """
    if not training_jobs:
        raise ValueError("PowerDial needs at least one training input")
    probe = app_factory()
    space = knob_space or probe.knob_space()
    sample = trace_job if trace_job is not None else training_jobs[0]

    control_set = identify_control_variables(
        app_factory,
        configurations=list(space.configurations()),
        knob_parameters=set(space.names),
        sample_job=sample,
        loop_iterations=trace_iterations,
    )
    calibration = calibrate(
        app_factory,
        training_jobs,
        knob_space=space,
        qos_cap=qos_cap,
        control_set=control_set,
    )
    table = calibration.knob_table(pareto_only=True)
    report = render_report(getattr(probe, "name", "application"), control_set)
    return PowerDialSystem(
        app_factory=app_factory,
        knob_space=space,
        control_set=control_set,
        calibration=calibration,
        table=table,
        report=report,
    )
