"""Dynamic knob data model (paper Section 2).

A *parameter* is a named static configuration option with a finite range of
settings; a *knob space* is the cartesian product of the parameters' ranges
(the paper calibrates "all combinations of the representative inputs and
configuration parameters"); a calibrated *knob setting* binds one parameter
combination to its measured speedup, QoS loss, and recorded
control-variable values; a *knob table* is the collection of calibrated
settings the actuator selects from at run time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Parameter",
    "KnobConfiguration",
    "KnobSpace",
    "KnobSetting",
    "KnobTable",
    "KnobError",
]


class KnobError(ValueError):
    """Raised for invalid knob model construction or queries."""


@dataclass(frozen=True)
class Parameter:
    """A static configuration parameter eligible to become a dynamic knob.

    Attributes:
        name: Parameter name (e.g. ``"sm"``, ``"subme"``).
        values: The range of settings to explore, in any order.
        default: The setting delivering the highest QoS — the paper's
            baseline ("for our set of benchmark applications, the default
            parameter setting").
    """

    name: str
    values: tuple
    default: Any

    def __post_init__(self) -> None:
        if not self.name:
            raise KnobError("parameter name must be non-empty")
        if not self.values:
            raise KnobError(f"parameter {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise KnobError(f"parameter {self.name!r} has duplicate values")
        if self.default not in self.values:
            raise KnobError(
                f"default {self.default!r} of parameter {self.name!r} "
                f"is not among its values"
            )


class KnobConfiguration(Mapping[str, Any]):
    """An immutable, hashable assignment of values to parameters."""

    __slots__ = ("_items",)

    def __init__(self, assignment: Mapping[str, Any]) -> None:
        self._items = tuple(sorted(assignment.items()))

    def __getitem__(self, name: str) -> Any:
        for key, value in self._items:
            if key == name:
                return value
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        return iter(key for key, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, KnobConfiguration):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value!r}" for key, value in self._items)
        return f"KnobConfiguration({inner})"

    def as_dict(self) -> dict[str, Any]:
        """Plain mutable copy."""
        return dict(self._items)


@dataclass(frozen=True)
class KnobSpace:
    """The cartesian product of a set of parameters' value ranges."""

    parameters: tuple[Parameter, ...]

    def __post_init__(self) -> None:
        if not self.parameters:
            raise KnobError("knob space needs at least one parameter")
        names = [parameter.name for parameter in self.parameters]
        if len(set(names)) != len(names):
            raise KnobError(f"duplicate parameter names: {names}")

    @property
    def names(self) -> list[str]:
        """Parameter names, in declaration order."""
        return [parameter.name for parameter in self.parameters]

    @property
    def size(self) -> int:
        """Number of parameter combinations."""
        count = 1
        for parameter in self.parameters:
            count *= len(parameter.values)
        return count

    def default_configuration(self) -> KnobConfiguration:
        """The highest-QoS (baseline) combination."""
        return KnobConfiguration(
            {parameter.name: parameter.default for parameter in self.parameters}
        )

    def configurations(self) -> Iterator[KnobConfiguration]:
        """Iterate over every parameter combination."""
        ranges = [parameter.values for parameter in self.parameters]
        for combo in itertools.product(*ranges):
            yield KnobConfiguration(dict(zip(self.names, combo)))

    def configuration(self, **assignment: Any) -> KnobConfiguration:
        """Build a configuration, validating names and values."""
        by_name = {parameter.name: parameter for parameter in self.parameters}
        unknown = set(assignment) - set(by_name)
        if unknown:
            raise KnobError(f"unknown parameters: {sorted(unknown)}")
        missing = set(by_name) - set(assignment)
        if missing:
            raise KnobError(f"missing parameters: {sorted(missing)}")
        for name, value in assignment.items():
            if value not in by_name[name].values:
                raise KnobError(
                    f"value {value!r} not in range of parameter {name!r}"
                )
        return KnobConfiguration(assignment)


@dataclass(frozen=True)
class KnobSetting:
    """One calibrated point in the performance-versus-QoS trade-off space.

    Attributes:
        configuration: The parameter combination.
        speedup: Mean speedup relative to the baseline (>= by construction
            1 for the baseline itself).
        qos_loss: Mean QoS loss (0 = baseline quality; larger is worse).
        control_values: Recorded control-variable values to poke into the
            application's address space to realize this setting.
    """

    configuration: KnobConfiguration
    speedup: float
    qos_loss: float
    control_values: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.speedup <= 0:
            raise KnobError(f"speedup must be positive, got {self.speedup!r}")
        if self.qos_loss < 0:
            raise KnobError(f"qos_loss must be >= 0, got {self.qos_loss!r}")

    def dominates(self, other: "KnobSetting") -> bool:
        """Pareto dominance: at least as fast and as accurate, better in one."""
        if self.speedup < other.speedup or self.qos_loss > other.qos_loss:
            return False
        return self.speedup > other.speedup or self.qos_loss < other.qos_loss


class KnobTable:
    """The calibrated settings available to the actuator, sorted by speedup.

    Args:
        settings: Calibrated settings.  Must include a baseline setting
            with speedup 1.0 (the default configuration).
    """

    def __init__(self, settings: Sequence[KnobSetting]) -> None:
        if not settings:
            raise KnobError("knob table needs at least one setting")
        self._settings = sorted(settings, key=lambda s: (s.speedup, -s.qos_loss))
        if abs(self._settings[0].speedup - 1.0) > 1e-6:
            raise KnobError(
                "knob table must include the baseline setting (speedup 1.0); "
                f"slowest has speedup {self._settings[0].speedup!r}"
            )

    def __len__(self) -> int:
        return len(self._settings)

    def __iter__(self) -> Iterator[KnobSetting]:
        return iter(self._settings)

    def __getitem__(self, index: int) -> KnobSetting:
        return self._settings[index]

    @property
    def settings(self) -> list[KnobSetting]:
        """All settings, slowest (baseline) first."""
        return list(self._settings)

    @property
    def baseline(self) -> KnobSetting:
        """The speedup-1.0 default setting."""
        return self._settings[0]

    @property
    def fastest(self) -> KnobSetting:
        """The setting with the maximum speedup (``s_max``)."""
        return self._settings[-1]

    @property
    def max_speedup(self) -> float:
        """Maximum achievable speedup."""
        return self._settings[-1].speedup

    def minimal_speedup_at_least(self, target: float) -> KnobSetting:
        """The slowest setting with ``speedup >= target`` (``s_min``).

        Raises :class:`KnobError` if even the fastest setting is too slow;
        callers saturate at :attr:`fastest` in that case.
        """
        for setting in self._settings:
            if setting.speedup >= target - 1e-12:
                return setting
        raise KnobError(
            f"no knob setting reaches speedup {target!r} "
            f"(max is {self.max_speedup!r})"
        )

    def pareto_frontier(self) -> list[KnobSetting]:
        """Settings not Pareto-dominated, sorted by speedup."""
        frontier = [
            setting
            for setting in self._settings
            if not any(
                other.dominates(setting)
                for other in self._settings
                if other is not setting
            )
        ]
        return frontier

    def restrict_to_pareto(self) -> "KnobTable":
        """A new table containing only the Pareto frontier."""
        return KnobTable(self.pareto_frontier())

    def with_qos_cap(self, cap: float) -> "KnobTable":
        """A new table excluding settings whose QoS loss exceeds ``cap``.

        Implements the paper's "caps on QoS loss".  The baseline always
        survives (its loss is 0 by definition).
        """
        if cap < 0:
            raise KnobError(f"QoS cap must be >= 0, got {cap!r}")
        kept = [s for s in self._settings if s.qos_loss <= cap]
        return KnobTable(kept)
