"""The PowerDial actuation policy (paper Section 2.3.3, Eq. 9–11).

The controller emits a continuous speedup; the knob system is discrete.
The actuator reconciles the two by planning a *time quantum* (the time to
process twenty heartbeats) during which the application runs different knob
settings for fractions of the quantum so that the average speedup equals
the commanded one.  With ``t_max``, ``t_min``, ``t_default`` the fractions
spent at the fastest setting, the minimal sufficient setting, and the
default, the plan satisfies

    s_max*t_max + s_min*t_min + s_default*t_default = s     (Eq. 9)
    t_max + t_min + t_default <= 1                          (Eq. 10)
    t_max, t_min, t_default >= 0                            (Eq. 11)

Two solutions matter (Section 2.3.3):

* **race-to-idle** — ``t_min = t_default = 0``; run flat out for
  ``s / s_max`` of the quantum and idle the rest (best on platforms with
  low idle power).
* **minimal speedup** — ``t_max = 0`` and ``t_min + t_default = 1``; run
  the slowest sufficient setting, blended with the default, delivering the
  lowest feasible QoS loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.knobs import KnobError, KnobSetting, KnobTable

__all__ = ["ActuationPolicy", "PlanSegment", "ActuationPlan", "Actuator", "ActuatorError"]

DEFAULT_QUANTUM_BEATS = 20
"""Heartbeats per time quantum ("heuristically ... twenty heartbeats")."""


class ActuatorError(ValueError):
    """Raised for invalid actuation requests."""


class ActuationPolicy(enum.Enum):
    """Which family of constraint solutions the actuator prefers.

    ``MINIMAL_SPEEDUP`` and ``RACE_TO_IDLE`` are the paper's two solutions.
    ``OPTIMAL_QOS`` is an extension: it solves the Eq. 9–11 system as a
    linear program over *all* table settings, minimizing work-weighted QoS
    loss — useful as an ablation against the paper's closed-form policy.
    """

    MINIMAL_SPEEDUP = "minimal-speedup"
    RACE_TO_IDLE = "race-to-idle"
    OPTIMAL_QOS = "optimal-qos"


@dataclass(frozen=True)
class PlanSegment:
    """A contiguous slice of the quantum at one knob setting (or idle).

    Attributes:
        setting: The knob setting to run, or ``None`` for idle.
        fraction: Fraction of the quantum's duration, in (0, 1].
    """

    setting: KnobSetting | None
    fraction: float

    @property
    def is_idle(self) -> bool:
        """True for the idle tail of a race-to-idle plan."""
        return self.setting is None

    @property
    def speedup(self) -> float:
        """Speedup while this segment runs (0 when idle)."""
        return 0.0 if self.setting is None else self.setting.speedup


@dataclass(frozen=True)
class ActuationPlan:
    """The schedule for one time quantum.

    Attributes:
        segments: Ordered plan segments; fractions sum to 1.
        commanded_speedup: The controller's requested speedup.
        achieved_speedup: Time-weighted average speedup of the plan
            (equals the commanded value when feasible; saturates at
            ``s_max`` otherwise).
    """

    segments: tuple[PlanSegment, ...]
    commanded_speedup: float
    achieved_speedup: float

    def __post_init__(self) -> None:
        total = sum(segment.fraction for segment in self.segments)
        if abs(total - 1.0) > 1e-9:
            raise ActuatorError(f"plan fractions sum to {total!r}, expected 1")
        for segment in self.segments:
            if not 0.0 < segment.fraction <= 1.0 + 1e-12:
                raise ActuatorError(f"segment fraction {segment.fraction!r} invalid")

    def setting_at(self, quantum_position: float) -> KnobSetting | None:
        """The setting active at ``quantum_position`` in [0, 1)."""
        if not 0.0 <= quantum_position < 1.0 + 1e-12:
            raise ActuatorError(
                f"quantum position must be in [0,1), got {quantum_position!r}"
            )
        cumulative = 0.0
        for segment in self.segments:
            cumulative += segment.fraction
            if quantum_position < cumulative - 1e-15:
                return segment.setting
        return self.segments[-1].setting

    def expected_qos_loss(self) -> float:
        """Work-weighted mean QoS loss over the quantum.

        Each segment contributes in proportion to the *results it produces*
        (fraction × speedup), since QoS is a property of outputs.
        """
        weighted = 0.0
        produced = 0.0
        for segment in self.segments:
            if segment.setting is None:
                continue
            amount = segment.fraction * segment.setting.speedup
            weighted += amount * segment.setting.qos_loss
            produced += amount
        if produced == 0.0:
            raise ActuatorError("plan produces no output (all idle)")
        return weighted / produced

    def idle_fraction(self) -> float:
        """Fraction of the quantum spent idle."""
        return sum(s.fraction for s in self.segments if s.is_idle)


class Actuator:
    """Converts commanded speedups into per-quantum knob schedules.

    Args:
        table: Calibrated knob table (typically the Pareto frontier).
        policy: Preferred constraint solution; see module docstring.
        quantum_beats: Heartbeats per quantum (paper: 20).
        selection_tolerance: Relative slack when matching the commanded
            speedup to a table setting under the minimal-speedup policy.
            A command within this fraction *above* a setting runs that
            setting for the whole quantum instead of blending the next
            faster setting with the default — heart-rate measurement
            jitter otherwise flips plans across setting boundaries and
            needlessly degrades QoS.  The integral controller absorbs the
            bounded (<= tolerance) throughput shortfall.
    """

    def __init__(
        self,
        table: KnobTable,
        policy: ActuationPolicy = ActuationPolicy.MINIMAL_SPEEDUP,
        quantum_beats: int = DEFAULT_QUANTUM_BEATS,
        selection_tolerance: float = 0.0,
    ) -> None:
        if quantum_beats < 1:
            raise ActuatorError(f"quantum must be >= 1 beats, got {quantum_beats!r}")
        if not 0.0 <= selection_tolerance < 0.5:
            raise ActuatorError(
                f"selection tolerance must be in [0, 0.5), got "
                f"{selection_tolerance!r}"
            )
        self._table = table
        self._policy = policy
        self.quantum_beats = quantum_beats
        self.selection_tolerance = selection_tolerance

    @property
    def table(self) -> KnobTable:
        """The knob table the actuator selects from."""
        return self._table

    @property
    def policy(self) -> ActuationPolicy:
        """The active actuation policy."""
        return self._policy

    def plan(self, speedup: float) -> ActuationPlan:
        """Build the schedule for the next quantum.

        Saturates at the fastest setting when ``speedup > s_max`` and at
        the baseline when ``speedup <= 1``.
        """
        if speedup <= 0:
            raise ActuatorError(f"commanded speedup must be positive, got {speedup!r}")
        s_max = self._table.max_speedup
        if speedup >= s_max:
            fastest = self._table.fastest
            return ActuationPlan(
                segments=(PlanSegment(fastest, 1.0),),
                commanded_speedup=speedup,
                achieved_speedup=fastest.speedup,
            )
        if self._policy is ActuationPolicy.RACE_TO_IDLE:
            return self._race_to_idle(speedup)
        if self._policy is ActuationPolicy.OPTIMAL_QOS:
            return self._optimal_qos(speedup)
        return self._minimal_speedup(speedup)

    def _race_to_idle(self, speedup: float) -> ActuationPlan:
        """t_min = t_default = 0: run at s_max, idle the remainder."""
        fastest = self._table.fastest
        t_max = speedup / fastest.speedup
        segments: list[PlanSegment] = [PlanSegment(fastest, t_max)]
        if t_max < 1.0 - 1e-12:
            segments.append(PlanSegment(None, 1.0 - t_max))
        return ActuationPlan(
            segments=tuple(segments),
            commanded_speedup=speedup,
            achieved_speedup=speedup,
        )

    def _minimal_speedup(self, speedup: float) -> ActuationPlan:
        """t_max = 0, t_min + t_default = 1: lowest feasible QoS loss."""
        baseline = self._table.baseline
        if speedup <= baseline.speedup + 1e-12:
            return ActuationPlan(
                segments=(PlanSegment(baseline, 1.0),),
                commanded_speedup=speedup,
                achieved_speedup=baseline.speedup,
            )
        s_min_setting = self._table.minimal_speedup_at_least(
            speedup / (1.0 + self.selection_tolerance)
        )
        s_min = s_min_setting.speedup
        if s_min <= speedup + 1e-12:
            # Exact match, or within the selection tolerance just below the
            # command: run this setting for the whole quantum.
            return ActuationPlan(
                segments=(PlanSegment(s_min_setting, 1.0),),
                commanded_speedup=speedup,
                achieved_speedup=s_min,
            )
        # Blend: s_min * t_min + s_default * (1 - t_min) = speedup.
        t_min = (speedup - baseline.speedup) / (s_min - baseline.speedup)
        segments = (
            PlanSegment(s_min_setting, t_min),
            PlanSegment(baseline, 1.0 - t_min),
        )
        return ActuationPlan(
            segments=segments,
            commanded_speedup=speedup,
            achieved_speedup=speedup,
        )

    def _optimal_qos(self, speedup: float) -> ActuationPlan:
        """Extension: LP over all settings minimizing work-weighted QoS.

        Decision variables are the time fractions per setting; constraints
        are exactly Eq. 9 (equality) and Eq. 10–11 (simplex).  The paper's
        minimal-speedup solution coincides with this LP whenever the QoS
        loss is convex in speedup along the frontier; the LP can do better
        on non-convex frontiers by blending two non-default settings.
        """
        import numpy as np
        from scipy.optimize import linprog

        if speedup <= self._table.baseline.speedup + 1e-12:
            return self._minimal_speedup(speedup)
        settings = self._table.settings
        speeds = np.array([s.speedup for s in settings])
        losses = np.array([s.qos_loss for s in settings])
        result = linprog(
            c=losses * speeds,
            A_eq=np.vstack([speeds, np.ones_like(speeds)]),
            b_eq=np.array([speedup, 1.0]),
            bounds=[(0.0, 1.0)] * len(settings),
            method="highs",
        )
        if not result.success:  # pragma: no cover - Eq. 9 is always feasible here
            return self._minimal_speedup(speedup)
        segments = tuple(
            PlanSegment(setting, float(fraction))
            for setting, fraction in zip(settings, result.x)
            if fraction > 1e-9
        )
        return ActuationPlan(
            segments=segments,
            commanded_speedup=speedup,
            achieved_speedup=speedup,
        )
