"""PowerDial core: the paper's primary contribution (Sections 2 and 2.3).

Knob model, QoS metrics, calibration, the heart-rate controller, the
actuation policy, the controlled runtime, and the end-to-end facade.
"""

from repro.core.actuator import (
    ActuationPlan,
    ActuationPolicy,
    Actuator,
    ActuatorError,
    PlanSegment,
)
from repro.core.calibration import (
    CalibrationError,
    CalibrationResult,
    TradeoffPoint,
    calibrate,
    evaluate_points,
)
from repro.core.controller import (
    ClosedLoopAnalysis,
    ControllerError,
    HeartRateController,
    analyze_closed_loop,
    convergence_time,
)
from repro.core.knobs import (
    KnobConfiguration,
    KnobError,
    KnobSetting,
    KnobSpace,
    KnobTable,
    Parameter,
)
from repro.core.powerdial import (
    PowerDialSystem,
    build_powerdial,
    measure_baseline_rate,
)
from repro.core.qos import (
    DistortionMetric,
    FMeasureQoS,
    QoSError,
    QoSMetric,
    distortion,
)
from repro.core.runtime import (
    PowerDialRuntime,
    RunResult,
    RuntimeEvent,
    RuntimeSample,
)

__all__ = [
    "Parameter",
    "KnobConfiguration",
    "KnobSpace",
    "KnobSetting",
    "KnobTable",
    "KnobError",
    "distortion",
    "QoSMetric",
    "DistortionMetric",
    "FMeasureQoS",
    "QoSError",
    "TradeoffPoint",
    "CalibrationResult",
    "calibrate",
    "evaluate_points",
    "CalibrationError",
    "HeartRateController",
    "ClosedLoopAnalysis",
    "analyze_closed_loop",
    "convergence_time",
    "ControllerError",
    "Actuator",
    "ActuationPlan",
    "ActuationPolicy",
    "PlanSegment",
    "ActuatorError",
    "PowerDialRuntime",
    "RunResult",
    "RuntimeEvent",
    "RuntimeSample",
    "PowerDialSystem",
    "build_powerdial",
    "measure_baseline_rate",
]
