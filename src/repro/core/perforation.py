"""Loop perforation baseline (paper §6; Hoffmann et al. [27], Misailovic
et al. [39]).

The paper positions dynamic knobs against *loop perforation*, which
"automatically transforms loops to skip loop iterations".  This module
implements the comparator: a generic wrapper that perforates an
application's main control loop — processing only one item in every
``1 + skip`` and substituting the most recent real output for skipped
items (the standard perforation recovery for stream-shaped loops; for a
video encoder this is frame dropping, for a pricer it is price reuse).

Perforation yields speedup without touching configuration parameters, but
it degrades QoS blindly: it cannot exploit the application's own
accuracy/effort machinery the way calibrated knobs can.  The ablation
bench quantifies that gap at matched speedups.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.apps.base import Application, ItemResult, WorkTracker
from repro.core.knobs import Parameter
from repro.core.qos import QoSMetric
from repro.tracing.variables import AddressSpace

__all__ = ["PerforatedApplication", "PERFORATION_RATES", "PerforationError"]


class PerforationError(ValueError):
    """Raised for invalid perforation configuration."""


PERFORATION_RATES = (0, 1, 2, 3, 7)
"""Skip factors to explore: process 1 of every (1 + skip) items, i.e.
speedups of roughly 1x, 2x, 3x, 4x, 8x."""


class PerforatedApplication(Application):
    """Wraps an application, perforating its main control loop.

    The wrapped application always runs at its *default* (highest-QoS)
    configuration; the only knob is the perforation ``skip`` factor.  A
    skipped item costs a nominal bookkeeping amount of work and reuses
    the last computed output.

    Args:
        inner: The application whose loop is perforated.
        skip_work: Work units charged per skipped item (stream handling
            that perforation cannot elide).
    """

    name = "perforated"

    def __init__(self, inner: Application, skip_work: float = 0.0) -> None:
        if skip_work < 0:
            raise PerforationError(f"skip_work must be >= 0, got {skip_work!r}")
        self.inner = inner
        self.skip_work = skip_work
        self._position = 0
        self._last_output: Any = None

    @classmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        return (Parameter("skip", PERFORATION_RATES, default=0),)

    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        space.write("skip_factor", config["skip"] + 0)
        inner_config = self.inner.default_configuration().as_dict()
        self.inner.initialize(inner_config, space)

    def prepare(self, job: Any) -> Sequence[Any]:
        self._position = 0
        self._last_output = None
        return self.inner.prepare(job)

    def process_item(
        self, item: Any, space: AddressSpace, tracker: WorkTracker
    ) -> ItemResult:
        skip = int(space.read("skip_factor"))
        position = self._position
        self._position += 1
        if position % (skip + 1) == 0 or self._last_output is None:
            result = self.inner.process_item(item, space, tracker)
            self._last_output = result.output
            return result
        tracker.add("main/skipped", self.skip_work)
        return ItemResult(output=self._last_output, work=self.skip_work)

    def qos_metric(self) -> QoSMetric:
        return self.inner.qos_metric()

    def reset(self) -> None:
        self._position = 0
        self._last_output = None
        self.inner.reset()

    def threads(self) -> int:
        return self.inner.threads()
