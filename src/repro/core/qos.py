"""Quality-of-service metrics (paper Section 2.2, Equation 1).

The QoS metric compares a user-provided *output abstraction* — a vector of
numbers extracted from the application output — between the baseline
execution and an execution at some other knob setting.  QoS loss is the
weighted mean relative error ("distortion", after Rinard [43]):

    qos = (1/m) * sum_i  w_i * | (o_i - ô_i) / o_i |

Zero is optimal; larger is worse.  Components whose baseline value is zero
contribute their absolute error instead (the relative form is undefined
there); this matches the metric's intent of penalizing any deviation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["distortion", "QoSMetric", "DistortionMetric", "FMeasureQoS", "QoSError"]


class QoSError(ValueError):
    """Raised for invalid QoS computations."""


def distortion(
    baseline: Sequence[float],
    observed: Sequence[float],
    weights: Sequence[float] | None = None,
    zero_tolerance: float = 1e-12,
) -> float:
    """Weighted relative-error distortion between two output abstractions.

    Args:
        baseline: Output abstraction of the highest-QoS execution
            (``o_1..o_m``).
        observed: Output abstraction of the execution under test
            (``ô_1..ô_m``).
        weights: Optional per-component importance weights ``w_i``
            (default: all ones).
        zero_tolerance: Baseline magnitudes below this use absolute error.

    Returns:
        The distortion; 0 means the outputs agree on every component.
    """
    base = np.asarray(baseline, dtype=float)
    obs = np.asarray(observed, dtype=float)
    if base.ndim != 1 or obs.ndim != 1:
        raise QoSError("output abstractions must be one-dimensional")
    if base.shape != obs.shape:
        raise QoSError(
            f"abstraction lengths differ: {base.shape[0]} vs {obs.shape[0]}"
        )
    if base.size == 0:
        raise QoSError("output abstraction must be non-empty")
    if weights is None:
        w = np.ones_like(base)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != base.shape:
            raise QoSError(
                f"weights length {w.shape[0]} does not match abstraction "
                f"length {base.shape[0]}"
            )
        if np.any(w < 0):
            raise QoSError("weights must be non-negative")
    errors = np.abs(base - obs)
    nonzero = np.abs(base) > zero_tolerance
    relative = np.where(nonzero, errors / np.where(nonzero, np.abs(base), 1.0), errors)
    return float(np.mean(w * relative))


@dataclass(frozen=True)
class QoSMetric:
    """A named QoS-loss function over application outputs.

    Attributes:
        name: Metric name for reports.
        loss: Callable mapping ``(baseline_outputs, observed_outputs)`` to
            a QoS loss (0 = optimal).
    """

    name: str
    loss: Callable[[object, object], float]

    def __call__(self, baseline: object, observed: object) -> float:
        value = self.loss(baseline, observed)
        if value < -1e-9:
            raise QoSError(f"QoS metric {self.name!r} produced negative loss {value!r}")
        return max(0.0, float(value))


def DistortionMetric(
    abstraction: Callable[[object], Sequence[float]],
    weights: Callable[[Sequence[float]], Sequence[float] | None] | None = None,
    name: str = "distortion",
) -> QoSMetric:
    """Build the paper's Equation-1 metric from an output abstraction.

    Args:
        abstraction: Extracts the numeric vector from an application output.
        weights: Optional function of the *baseline* abstraction returning
            per-component weights (the paper lets weights depend on the
            output, e.g. bodytrack weights components by magnitude).
        name: Metric name.
    """

    def _loss(baseline_output: object, observed_output: object) -> float:
        base = abstraction(baseline_output)
        obs = abstraction(observed_output)
        w = weights(base) if weights is not None else None
        return distortion(base, obs, w)

    return QoSMetric(name=name, loss=_loss)


def FMeasureQoS(
    f_measure: Callable[[object, object], float], name: str = "f-measure"
) -> QoSMetric:
    """QoS loss as ``1 - F`` for information-retrieval outputs (swish++).

    Args:
        f_measure: Callable mapping ``(baseline_outputs, observed_outputs)``
            to an F-measure in [0, 1], where 1 means identical result
            quality.
    """

    def _loss(baseline_output: object, observed_output: object) -> float:
        f = f_measure(baseline_output, observed_output)
        if not 0.0 <= f <= 1.0 + 1e-9:
            raise QoSError(f"F-measure must be in [0,1], got {f!r}")
        return 1.0 - min(f, 1.0)

    return QoSMetric(name=name, loss=_loss)
