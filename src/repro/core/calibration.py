"""Dynamic knob calibration (paper Section 2.2).

The calibrator executes all combinations of the representative (training)
inputs and configuration parameters.  For each combination it records the
mean speedup over all inputs — execution time at the default settings
divided by execution time at the combination — and the mean QoS loss
against the baseline output.  The Pareto-optimal combinations become the
knob table the runtime actuates over.

Execution time on a fixed-frequency machine is proportional to the work
the application performs (see ``repro.hardware``), so speedups are
computed from exact work counts: deterministic and platform-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.apps.base import Application, run_job
from repro.core.knobs import (
    KnobConfiguration,
    KnobSpace,
    KnobSetting,
    KnobTable,
)
from repro.tracing.tracer import ControlVariableSet

__all__ = ["TradeoffPoint", "CalibrationResult", "calibrate", "CalibrationError"]


class CalibrationError(RuntimeError):
    """Raised when calibration cannot produce a valid knob table."""


@dataclass(frozen=True)
class TradeoffPoint:
    """One explored point in the performance-versus-QoS space.

    Attributes:
        configuration: The parameter combination.
        speedup: Mean speedup over the training inputs.
        qos_loss: Mean QoS loss over the training inputs.
        per_input_speedup: Speedup for each individual input.
        per_input_qos: QoS loss for each individual input.
    """

    configuration: KnobConfiguration
    speedup: float
    qos_loss: float
    per_input_speedup: tuple[float, ...] = ()
    per_input_qos: tuple[float, ...] = ()


@dataclass
class CalibrationResult:
    """Everything the calibrator learned.

    Attributes:
        points: One trade-off point per explored parameter combination.
        baseline_configuration: The default (highest-QoS) combination.
        baseline_work: Mean work per training input at the baseline.
        control_set: Control-variable values per combination, when
            identification was run (production builds); ``None`` for
            exploration-only calibrations.
        qos_cap: The user's QoS-loss bound, if any.
    """

    points: list[TradeoffPoint]
    baseline_configuration: KnobConfiguration
    baseline_work: float
    control_set: ControlVariableSet | None = None
    qos_cap: float | None = None

    def point_for(self, configuration: Mapping[str, Any]) -> TradeoffPoint:
        """The explored point for a given combination."""
        target = KnobConfiguration(configuration)
        for point in self.points:
            if point.configuration == target:
                return point
        raise CalibrationError(f"configuration {configuration!r} was not explored")

    def pareto_points(self) -> list[TradeoffPoint]:
        """Pareto-optimal points (max speedup, min QoS loss), by speedup."""
        frontier: list[TradeoffPoint] = []
        for point in self.points:
            dominated = any(
                (other.speedup >= point.speedup and other.qos_loss <= point.qos_loss)
                and (other.speedup > point.speedup or other.qos_loss < point.qos_loss)
                for other in self.points
            )
            if not dominated:
                frontier.append(point)
        return sorted(frontier, key=lambda p: p.speedup)

    def knob_table(self, pareto_only: bool = True) -> KnobTable:
        """Build the actuator's knob table from the calibration.

        Applies the QoS cap, restricts to the Pareto frontier by default,
        and attaches recorded control-variable values when available.
        """
        points = self.pareto_points() if pareto_only else list(self.points)
        if self.qos_cap is not None:
            points = [p for p in points if p.qos_loss <= self.qos_cap]
        settings = []
        for point in points:
            control_values: Mapping[str, Any] = {}
            if self.control_set is not None:
                control_values = self.control_set.values_for(point.configuration)
            settings.append(
                KnobSetting(
                    configuration=point.configuration,
                    speedup=point.speedup,
                    qos_loss=point.qos_loss,
                    control_values=control_values,
                )
            )
        if not any(abs(s.speedup - 1.0) <= 1e-6 for s in settings):
            baseline_values: Mapping[str, Any] = {}
            if self.control_set is not None:
                baseline_values = self.control_set.values_for(
                    self.baseline_configuration
                )
            settings.append(
                KnobSetting(
                    configuration=self.baseline_configuration,
                    speedup=1.0,
                    qos_loss=0.0,
                    control_values=baseline_values,
                )
            )
        return KnobTable(settings)


def calibrate(
    app_factory: Callable[[], Application],
    training_jobs: Sequence[Any],
    knob_space: KnobSpace | None = None,
    qos_cap: float | None = None,
    control_set: ControlVariableSet | None = None,
) -> CalibrationResult:
    """Explore the trade-off space over all combinations × training inputs.

    Args:
        app_factory: Builds fresh application instances.
        training_jobs: The representative inputs.
        knob_space: Combinations to explore (default: the application's
            full knob space).
        qos_cap: Optional bound excluding settings with higher QoS loss.
        control_set: Previously identified control variables, to attach
            recorded values to each setting.

    Returns:
        A :class:`CalibrationResult` over every combination.
    """
    if not training_jobs:
        raise CalibrationError("calibration needs at least one training input")
    probe = app_factory()
    space = knob_space or probe.knob_space()
    baseline_config = space.default_configuration()
    metric = probe.qos_metric()

    baseline_outputs: list[list[Any]] = []
    baseline_work: list[float] = []
    for job in training_jobs:
        outputs, work, _ = run_job(app_factory(), baseline_config, job)
        if work <= 0:
            raise CalibrationError("baseline run performed no work")
        baseline_outputs.append(outputs)
        baseline_work.append(work)

    points: list[TradeoffPoint] = []
    for configuration in space.configurations():
        speedups: list[float] = []
        losses: list[float] = []
        for index, job in enumerate(training_jobs):
            if configuration == baseline_config:
                speedups.append(1.0)
                losses.append(0.0)
                continue
            outputs, work, _ = run_job(app_factory(), configuration, job)
            if work <= 0:
                raise CalibrationError(
                    f"configuration {configuration!r} performed no work"
                )
            speedups.append(baseline_work[index] / work)
            losses.append(metric(baseline_outputs[index], outputs))
        points.append(
            TradeoffPoint(
                configuration=configuration,
                speedup=float(np.mean(speedups)),
                qos_loss=float(np.mean(losses)),
                per_input_speedup=tuple(speedups),
                per_input_qos=tuple(losses),
            )
        )

    return CalibrationResult(
        points=points,
        baseline_configuration=baseline_config,
        baseline_work=float(np.mean(baseline_work)),
        control_set=control_set,
        qos_cap=qos_cap,
    )


def evaluate_points(
    app_factory: Callable[[], Application],
    configurations: Sequence[KnobConfiguration],
    jobs: Sequence[Any],
) -> list[TradeoffPoint]:
    """Re-measure given combinations on a different input set.

    Used to evaluate how training-time calibration generalizes to
    production inputs (paper Section 5.2, Figure 5 white squares and
    Table 2).
    """
    probe = app_factory()
    baseline_config = probe.knob_space().default_configuration()
    metric = probe.qos_metric()

    baseline_outputs: list[list[Any]] = []
    baseline_work: list[float] = []
    for job in jobs:
        outputs, work, _ = run_job(app_factory(), baseline_config, job)
        baseline_outputs.append(outputs)
        baseline_work.append(work)

    points = []
    for configuration in configurations:
        speedups, losses = [], []
        for index, job in enumerate(jobs):
            if configuration == baseline_config:
                speedups.append(1.0)
                losses.append(0.0)
                continue
            outputs, work, _ = run_job(app_factory(), configuration, job)
            speedups.append(baseline_work[index] / work)
            losses.append(metric(baseline_outputs[index], outputs))
        points.append(
            TradeoffPoint(
                configuration=configuration,
                speedup=float(np.mean(speedups)),
                qos_loss=float(np.mean(losses)),
                per_input_speedup=tuple(speedups),
                per_input_qos=tuple(losses),
            )
        )
    return points
