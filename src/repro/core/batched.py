"""Vectorized batched control kernel (scalar ``PowerDialRuntime`` is the
reference).

The scalar step path tops out near 119k items/sec because every item pays
a Python round trip: an event-heap probe, a quantum-boundary compare, a
plan lookup, a heartbeat, a work execution, a power observation, and a
sample record — each a handful of attribute loads and float ops.  The
control law itself (Eq. 9–11 integrator, heartbeat-window statistics,
actuation-plan selection, water-fill cap math) is small dense arithmetic
repeated identically per item and per instance, which is exactly the
shape that belongs in batched numpy kernels.

This module provides that kernel **without changing a single float**:

* :class:`BatchedServiceRuntime` subclasses
  :class:`~repro.core.runtime.PowerDialRuntime` and overrides only the
  ``_stepping`` generator.  The overridden loop is the scalar loop with a
  fast path: a maximal run of items that provably hits no event, no
  quantum boundary, and no plan-segment change executes as one numpy
  chunk (one time chain, one bulk heartbeat commit, one bulk power
  observation, one vectorized application batch), then falls back to the
  verbatim scalar code for everything else (events, boundaries,
  race-to-idle tails, starvation, snapshot/restore).  Every yield leaves
  queue, monitor, meter, clock, controller, and phase state bit-identical
  to the scalar runtime's, so billing, journaling, and shard parity are
  inherited rather than re-proven.
* :func:`to_batched` converts an un-begun scalar runtime in place-for-
  place; apps without a ``batch_process`` hook (or runtime subclasses)
  are returned unchanged.
* :func:`batched_controller_update`, :func:`batched_plan_parameters`,
  and :func:`batched_water_fill` are the standalone vectorized forms of
  the Eq. 9–11 update, minimal-speedup plan selection, and the arbiter's
  water-fill — each pinned bit-for-bit against its scalar twin by the
  differential test suite.

Bit-exactness ground rules (load-bearing, tested):

* ``np.add.accumulate`` is strictly sequential left-to-right, so a
  cumulative chain seeded with the current scalar value reproduces a
  ``+=`` loop exactly.  ``np.sum``/``np.add.reduce`` pairwise-reduce and
  are never used here.
* NumPy float64 elementwise arithmetic is IEEE-754 double arithmetic —
  bit-identical to the same Python float expression per element.
* Comparisons used for truncation (quantum crossing, segment edges,
  event beats) are evaluated on exactly the floats the scalar loop would
  compare, so the chunk ends precisely where the scalar loop would take
  a different branch.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

import numpy as np

from repro.apps.base import WorkTracker
from repro.core.controller import ControllerError
from repro.core.knobs import KnobSetting, KnobTable
from repro.core.runtime import (
    PowerDialRuntime,
    RunResult,
    RuntimeSample,
    StepStatus,
)

__all__ = [
    "BatchedServiceRuntime",
    "to_batched",
    "batched_controller_update",
    "batched_plan_parameters",
    "batched_water_fill",
]

# Below this many provably uniform items the chunk setup (numpy array
# construction, truncation searches) costs more than it saves; run the
# scalar body instead.
_MIN_BULK = 2
# Upper bound on candidate-chunk assembly, a guard against unbounded
# job pre-pull when per-item time is pathologically small.
_MAX_CHUNK = 4096


def _fast_sample(
    beat: int,
    time: float,
    window_rate: float | None,
    normalized_performance: float | None,
    knob_gain: float,
    commanded_speedup: float,
    frequency_ghz: float,
) -> RuntimeSample:
    """Materialize a :class:`RuntimeSample` without the frozen-dataclass
    ``__init__`` (which routes every field through
    ``object.__setattr__``).  Field-for-field identical to the normal
    constructor — equality, hashing, repr, and pickling all read the
    instance ``__dict__`` this fills."""
    sample = RuntimeSample.__new__(RuntimeSample)
    d = sample.__dict__
    d["beat"] = beat
    d["time"] = time
    d["window_rate"] = window_rate
    d["normalized_performance"] = normalized_performance
    d["knob_gain"] = knob_gain
    d["commanded_speedup"] = commanded_speedup
    d["frequency_ghz"] = frequency_ghz
    return sample


class BatchedServiceRuntime(PowerDialRuntime):
    """A :class:`PowerDialRuntime` whose step path advances items in
    numpy chunks.

    Drop-in: the resumable API (``begin``/``step``/``feed``/``snapshot``
    /``restore``/``finish``…) is inherited unchanged; only the internal
    ``_stepping`` generator differs.  The application must provide a
    ``batch_process(items, space, tracker) -> (outputs, work_per_item)``
    hook whose outputs are float-for-float equal to per-item
    ``process_item`` calls under a fixed knob configuration and whose
    per-item work is constant across the batch (chunks never span a knob
    change, so any app whose work depends only on its knobs qualifies).

    Host-visible invariants preserved at every yield, bit for bit:
    clock, meter energy/samples, heartbeat window state and count,
    controller state, plan cache, quantum phase, pending-job queue
    (jobs pulled into a chunk but not started are re-queued before the
    generator suspends), emitted samples, outputs, and settings.  Two
    documented narrowings, invisible to the engine: the monitor's
    per-beat record log is collapsed (``HeartbeatMonitor.commit_run``),
    and job completion callbacks are invoked at chunk commit with the
    exact completion timestamps rather than interleaved with execution —
    so callbacks must derive state from the passed timestamp, not from
    live machine inspection (the engine's latency accounting does).
    """

    def _stepping(self):
        """The scalar run loop with a vectorized uniform-run fast path."""
        app, machine, monitor = self.app, self.machine, self.monitor
        quantum_duration = self.actuator.quantum_beats / self.target_rate
        plan = self._plan_for(self.controller.speedup)
        quantum_start = machine.now
        beats_in_quantum = 0
        if self._restored_phase is not None:
            beats_in_quantum, quantum_start = self._restored_phase
            self._restored_phase = None

        tracker = WorkTracker()
        samples: list[RuntimeSample] = []
        settings_used: list[KnobSetting] = []
        outputs_by_job: list[list[Any]] = []
        first_beat_time: float | None = None
        threads = app.threads()
        target_rate = self.target_rate
        queue = self._job_queue
        bulk = getattr(app, "batch_process", None)
        new_sample = RuntimeSample.__new__
        # Expected items per chunk, refined from the realized per-item
        # seconds: enough to reach the next quantum boundary, plus slack.
        hint = self.actuator.quantum_beats + 1
        last_seconds: float | None = None

        # The job currently in service, mirroring the scalar loop's
        # (pending_job, prepared items, outputs, position) locals.  It
        # persists across yields exactly as the scalar generator's frame
        # does; queue observers never see it (scalar pops before any
        # yield too).
        job = None
        items: list[Any] = []
        outputs: list[Any] = []
        idx = 0

        while True:
            if job is None:
                if not queue:
                    if self._input_closed:
                        break
                    stalled_at = machine.now
                    self._phase = (beats_in_quantum, quantum_start)
                    yield StepStatus.STARVED
                    if machine.now > stalled_at:
                        quantum_start = machine.now
                        beats_in_quantum = 0
                    continue
                job = queue.popleft()
                items = app.prepare(job.job)
                outputs = []
                idx = 0
            if idx >= len(items):
                # Job drained (or prepared empty): complete it before
                # looking at the queue again, exactly as the scalar loop
                # falls out of its item loop.
                outputs_by_job.append(outputs)
                if job.on_complete is not None:
                    job.on_complete(machine.now)
                job = None
                continue

            # ---- scalar per-item prologue (verbatim semantics) ----
            while self._event_heap and self._event_heap[0][0] <= monitor.count:
                heapq.heappop(self._event_heap)[2].action(machine)

            if machine.now - quantum_start >= quantum_duration:
                plan = self._replan(beats_in_quantum, machine.now - quantum_start)
                quantum_start = machine.now
                beats_in_quantum = 0
                self._phase = (beats_in_quantum, quantum_start)
                yield StepStatus.RAN

            fraction = (machine.now - quantum_start) / quantum_duration
            fraction = min(max(fraction, 0.0), 1.0 - 1e-9)
            setting = plan.setting_at(fraction)
            if setting is None:
                # Race-to-idle tail: idle out the quantum, then replan.
                machine.idle_until(quantum_start + quantum_duration)
                plan = self._replan(beats_in_quantum, machine.now - quantum_start)
                quantum_start = machine.now
                beats_in_quantum = 0
                self._phase = (beats_in_quantum, quantum_start)
                yield StepStatus.RAN
                setting = plan.setting_at(0.0)
                if setting is None:  # pragma: no cover - plans run first
                    setting = self.table.fastest
            self._apply_setting(setting)

            # ---- assemble the candidate run ----
            # Pull whole jobs until the candidate covers the expected
            # chunk; anything not consumed is re-queued (or kept in
            # service) before the next yield, so between-step observers
            # see exactly the scalar queue.
            if last_seconds is not None and last_seconds > 0.0:
                room = quantum_duration - (machine.now - quantum_start)
                hint = int(room / last_seconds) + 2
                if hint < _MIN_BULK:
                    hint = _MIN_BULK
                elif hint > _MAX_CHUNK:
                    hint = _MAX_CHUNK
            flat = items[idx:]
            batch_jobs = [(job, items, outputs, idx)]
            while len(flat) < hint and queue:
                nxt = queue.popleft()
                prepared = app.prepare(nxt.job)
                batch_jobs.append((nxt, prepared, [], 0))
                flat.extend(prepared)
            n = len(flat)

            count = 0
            if bulk is not None and n >= _MIN_BULK:
                # ---- truncate to the provably uniform prefix ----
                # The application batch runs under the already-applied
                # setting; space phase matches the scalar loop (first
                # heartbeat precedes the first item's processing).
                self.space.mark_first_heartbeat()
                out_arr, work = bulk(flat, self.space, tracker)
                seconds = machine.processor.seconds_for_work(work, threads=threads)
                seconds *= machine.load_factor
                last_seconds = seconds
                cand = np.empty(n + 1, dtype=float)
                cand[0] = machine.now
                cand[1:] = seconds
                np.add.accumulate(cand, out=cand)
                # Quantum boundary: first item whose pre-execution check
                # `now - quantum_start >= quantum_duration` would fire.
                diffs = cand[:n] - quantum_start
                limit = int(np.searchsorted(diffs, quantum_duration, side="left"))
                # Event boundary: first item whose beat count reaches the
                # earliest scheduled event (the prologue drained beats
                # that are already due, so this is >= 1).
                if self._event_heap:
                    due_in = self._event_heap[0][0] - monitor.count
                    if due_in < limit:
                        limit = due_in
                count = min(limit, n)
                # Plan-segment boundary: first item whose quantum
                # fraction selects a different segment than the current.
                plan_segments = plan.segments
                if len(plan_segments) > 1 and count > 1:
                    fr = diffs[:count] / quantum_duration
                    np.maximum(fr, 0.0, out=fr)
                    np.minimum(fr, 1.0 - 1e-9, out=fr)
                    edges = np.empty(len(plan_segments))
                    cumulative = 0.0
                    for j, segment in enumerate(plan_segments):
                        cumulative += segment.fraction
                        edges[j] = cumulative - 1e-15
                    seg_idx = np.searchsorted(edges, fr, side="right")
                    np.minimum(seg_idx, len(plan_segments) - 1, out=seg_idx)
                    change = np.flatnonzero(seg_idx != seg_idx[0])
                    if change.size:
                        count = int(change[0])

            if count < _MIN_BULK:
                # No profitable uniform run (no batch hook, a lone item,
                # or a boundary right after the next item): re-queue the
                # pulled jobs and run the scalar item body verbatim.
                for pulled in reversed(batch_jobs[1:]):
                    queue.appendleft(pulled[0])
                record = monitor.heartbeat()
                if first_beat_time is None:
                    first_beat_time = record.timestamp
                self.space.mark_first_heartbeat()
                result = app.process_item(items[idx], self.space, tracker)
                machine.execute(result.work, threads=threads)
                outputs.append(result.output)
                beats_in_quantum += 1
                window_rate = monitor.window_rate()
                samples.append(
                    _fast_sample(
                        record.sequence,
                        record.timestamp,
                        window_rate,
                        None if window_rate is None else window_rate / target_rate,
                        setting.speedup,
                        self.controller.speedup,
                        machine.processor.frequency_ghz,
                    )
                )
                settings_used.append(setting)
                idx += 1
                continue

            # ---- commit the chunk ----
            # The boundary chain is exactly ``cand`` (it was built from
            # the same seconds and the same starting clock), so hand it
            # to the machine rather than recomputing it.
            times = machine.execute_run(
                count, work, threads=threads, times=cand[: count + 1]
            )
            times_list = times.tolist()
            first_seq, rates = monitor.commit_run(times[:-1])
            if first_beat_time is None:
                first_beat_time = times_list[0]
            beats_in_quantum += count

            gain = setting.speedup
            commanded = self.controller.speedup
            frequency = machine.processor.frequency_ghz
            append = samples.append
            beat = first_seq
            for rate, beat_time in zip(rates, times_list):
                sample = new_sample(RuntimeSample)
                d = sample.__dict__
                d["beat"] = beat
                d["time"] = beat_time
                d["window_rate"] = rate
                d["normalized_performance"] = (
                    None if rate is None else rate / target_rate
                )
                d["knob_gain"] = gain
                d["commanded_speedup"] = commanded
                d["frequency_ghz"] = frequency
                append(sample)
                beat += 1
            settings_used.extend([setting] * count)

            # Distribute outputs to their jobs, complete the ones that
            # ended inside the chunk (in order, with the exact end-of-
            # item timestamps), and re-queue jobs the chunk never
            # reached.
            outs = out_arr.tolist()
            remaining = count
            pos = 0
            job = None
            bi = 0
            n_jobs = len(batch_jobs)
            while bi < n_jobs:
                pending, jitems, jouts, jstart = batch_jobs[bi]
                need = len(jitems) - jstart
                if need > remaining:
                    jouts.extend(outs[pos : pos + remaining])
                    job, items, outputs = pending, jitems, jouts
                    idx = jstart + remaining
                    pos += remaining
                    remaining = 0
                    bi += 1
                    break
                jouts.extend(outs[pos : pos + need])
                pos += need
                remaining -= need
                outputs_by_job.append(jouts)
                if pending.on_complete is not None:
                    pending.on_complete(times_list[pos])
                bi += 1
            for pulled in reversed(batch_jobs[bi:]):
                queue.appendleft(pulled[0])

        self._phase = (beats_in_quantum, quantum_start)
        elapsed = 0.0
        if first_beat_time is not None:
            elapsed = machine.now - first_beat_time
        try:
            mean_power: float | None = machine.meter.mean_power()
        except Exception:
            mean_power = None
        self._result = RunResult(
            samples=samples,
            outputs_by_job=outputs_by_job,
            settings_used=settings_used,
            mean_power=mean_power,
            energy_joules=machine.meter.energy_joules,
            elapsed=elapsed,
        )


def to_batched(runtime: PowerDialRuntime) -> PowerDialRuntime:
    """Convert an un-begun scalar runtime to its batched equivalent.

    Returns the runtime unchanged when it is already batched, is a
    custom :class:`PowerDialRuntime` subclass (whose overridden behavior
    the kernel cannot vouch for), or hosts an application without a
    ``batch_process`` hook.  The converted runtime shares the original's
    app, table, machine, and controller objects, and is constructed with
    the same policy/quantum/window parameters, so ``begin()`` arms it
    exactly as it would have armed the original.
    """
    if isinstance(runtime, BatchedServiceRuntime):
        return runtime
    if type(runtime) is not PowerDialRuntime:
        return runtime
    if getattr(runtime.app, "batch_process", None) is None:
        return runtime
    if runtime._stepper is not None:
        raise RuntimeError("to_batched() requires an un-begun runtime")
    return BatchedServiceRuntime(
        app=runtime.app,
        table=runtime.table,
        machine=runtime.machine,
        target_rate=runtime.target_rate,
        baseline_rate=runtime.baseline_rate,
        policy=runtime.actuator.policy,
        quantum_beats=runtime.actuator.quantum_beats,
        window_size=runtime.monitor.window_size,
        controller=runtime.controller,
    )


def batched_controller_update(
    speedups: np.ndarray,
    heart_rates: np.ndarray,
    target_rates: np.ndarray | float,
    baseline_rates: np.ndarray | float,
    min_speedups: np.ndarray | float,
    max_speedups: np.ndarray | float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Eq. 9–11 integrator update for N independent loops.

    Bit-identical, element for element, to N scalar
    :meth:`~repro.core.controller.HeartRateController.update` calls:
    ``e = g - h``, ``s = clamp(s + e / b, min, max)`` — every operation
    is a single IEEE double op either way.  Returns ``(speedups,
    errors)``; the engine's bit-exact step path amortizes controller
    updates to one scalar call per instance per quantum (cross-instance
    batching cannot preserve the interleaved replan sequencing), so this
    kernel serves callers that advance many loops in lockstep — sweeps,
    policy searches, and the differential suite that pins it.
    """
    speedups = np.asarray(speedups, dtype=float)
    heart_rates = np.asarray(heart_rates, dtype=float)
    if heart_rates.size and float(heart_rates.min()) < 0.0:
        raise ControllerError("heart rates must be >= 0")
    errors = np.subtract(target_rates, heart_rates)
    updated = speedups + errors / np.asarray(baseline_rates, dtype=float)
    updated = np.maximum(updated, min_speedups)
    if max_speedups is not None:
        updated = np.minimum(updated, max_speedups)
    return updated, errors


def batched_plan_parameters(
    table: KnobTable,
    speedups: np.ndarray,
    selection_tolerance: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized minimal-speedup plan selection over a speedup vector.

    For each commanded speedup, computes the same decision
    :meth:`~repro.core.actuator.Actuator.plan` makes under the
    minimal-speedup policy: which table setting anchors the quantum and
    what fraction of the quantum it runs (the rest going to the
    baseline).  Returns ``(setting_index, fraction)`` arrays —
    ``fraction == 1.0`` for saturated / baseline / whole-quantum plans,
    and the Eq. 9 blend ``(s - s_base) / (s_min - s_base)`` otherwise,
    with every epsilon (``1e-12`` dead bands, the tolerance divisor)
    applied on exactly the floats the scalar path uses.
    """
    speedups = np.asarray(speedups, dtype=float)
    if speedups.size and float(speedups.min()) <= 0.0:
        raise ValueError("commanded speedups must be positive")
    speeds = np.asarray([s.speedup for s in table.settings], dtype=float)
    baseline_speedup = float(speeds[0])
    s_max = float(speeds[-1])
    n_settings = speeds.shape[0]

    # Candidate s_min per command: first setting at least as fast as the
    # tolerance-discounted target (KnobTable.minimal_speedup_at_least).
    targets = speedups / (1.0 + selection_tolerance) - 1e-12
    indices = np.searchsorted(speeds, targets, side="left")
    np.minimum(indices, n_settings - 1, out=indices)

    saturated = speedups >= s_max
    at_baseline = speedups <= baseline_speedup + 1e-12
    whole = speeds[indices] <= speedups + 1e-12

    with np.errstate(divide="ignore", invalid="ignore"):
        blend = (speedups - baseline_speedup) / (speeds[indices] - baseline_speedup)
    fractions = np.where(whole, 1.0, blend)
    fractions = np.where(saturated | at_baseline, 1.0, fractions)
    indices = np.where(at_baseline, 0, indices)
    indices = np.where(saturated, n_settings - 1, indices)
    return indices, fractions


def batched_water_fill(
    weights: Sequence[float],
    floors: Sequence[float],
    ceilings: Sequence[float],
    budget_watts: float,
) -> list[float]:
    """Vectorized twin of :func:`repro.datacenter.arbiter.water_fill`.

    Bit-identical caps for finite, non-negative inputs (watts): each
    round's shares, headrooms, and takes are single elementwise IEEE
    ops, and the two scalar reductions (``total_weight``, ``granted``)
    are reproduced with strictly sequential ``np.add.accumulate`` sums
    in which closed entries contribute an exact ``+0.0`` — so the
    accumulation visits the open set in the same ascending order the
    scalar loop iterates it, adding identical values.  Round count,
    saturation epsilons, and early-exit conditions are the scalar
    code's, so tie-breaking order is inherited.
    """
    weights_arr = np.asarray(weights, dtype=float)
    caps = np.array(floors, dtype=float)
    ceilings_arr = np.asarray(ceilings, dtype=float)
    n = caps.shape[0]
    if weights_arr.shape[0] != n or ceilings_arr.shape[0] != n:
        raise ValueError("weights, floors, and ceilings must have equal length")
    # Seed the surplus with Python's own left-to-right sum over the
    # caller's sequence, exactly as the scalar implementation does.
    surplus = budget_watts - sum(floors)
    open_mask = np.ones(n, dtype=bool)
    while surplus > 1e-9 and open_mask.any():
        masked_weights = np.where(open_mask, weights_arr, 0.0)
        total_weight = float(np.add.accumulate(masked_weights)[-1]) if n else 0.0
        if total_weight <= 0.0:
            break
        share = surplus * weights_arr / total_weight
        headroom = ceilings_arr - caps
        take = np.where(open_mask, np.minimum(share, headroom), 0.0)
        caps += take
        granted = float(np.add.accumulate(take)[-1])
        saturated = open_mask & (headroom - take <= 1e-9)
        open_mask &= ~saturated
        surplus -= granted
        if granted <= 1e-9:
            break
    return caps.tolist()
