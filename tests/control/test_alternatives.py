"""Tests for the related-work controller implementations."""

import pytest
from hypothesis import given, strategies as st

from repro.control.alternatives import (
    BangBangController,
    HeuristicStepController,
    PIDController,
    SpeedupController,
)
from repro.core.controller import ControllerError, HeartRateController


def run_plant(controller, baseline, steps, capacity=1.0):
    """Drive h(t+1) = capacity * b * s(t) and return the rate series."""
    rates = []
    speedup = controller.speedup
    for _ in range(steps):
        rate = capacity * baseline * speedup
        rates.append(rate)
        speedup = controller.update(rate)
    return rates


class TestProtocol:
    @pytest.mark.parametrize(
        "controller",
        [
            PIDController(10.0, 10.0),
            HeuristicStepController(10.0),
            BangBangController(10.0, high_speedup=4.0),
            HeartRateController(10.0, 10.0),
        ],
    )
    def test_conforms_to_speedup_controller(self, controller):
        assert isinstance(controller, SpeedupController)
        before = controller.speedup
        after = controller.update(5.0)
        assert after == controller.speedup
        controller.reset()
        assert controller.speedup == before


class TestPID:
    def test_pure_integral_matches_paper_controller(self):
        """kp = kd = 0, ki = 1 is exactly Eq. 4."""
        pid = PIDController(10.0, 4.0, kp=0.0, ki=1.0, kd=0.0)
        paper = HeartRateController(10.0, 4.0)
        for rate in [3.0, 7.5, 11.0, 10.0, 9.0, 14.0, 2.0]:
            assert pid.update(rate) == pytest.approx(paper.update(rate))

    def test_proportional_term(self):
        pid = PIDController(10.0, 5.0, kp=2.0, ki=0.0)
        # e/b = (10-5)/5 = 1; s = 1 + kp*1 = 3.
        assert pid.update(5.0) == pytest.approx(3.0)

    def test_derivative_term(self):
        pid = PIDController(10.0, 5.0, kp=0.0, ki=0.0, kd=1.0, min_speedup=0.1)
        pid.update(5.0)  # first step: no derivative
        # e goes (10-5)/5 = 1 -> (10-7.5)/5 = 0.5; d = -0.5; s = 1 - 0.5.
        assert pid.update(7.5) == pytest.approx(0.5)

    def test_converges_on_capped_plant(self):
        pid = PIDController(10.0, 10.0, kp=0.2, ki=0.8, max_speedup=4.0)
        rates = run_plant(pid, baseline=10.0, steps=40, capacity=0.5)
        assert rates[-1] == pytest.approx(10.0, rel=0.02)

    def test_anti_windup_stops_integral_growth(self):
        pid = PIDController(10.0, 10.0, max_speedup=2.0)
        for _ in range(50):
            pid.update(0.0)  # unreachable target; command saturates
        assert pid.speedup == 2.0
        # One on-target observation must not need 50 steps to unwind.
        pid.update(10.0)
        assert pid.speedup == 2.0  # integral froze at the clamp
        pid.update(25.0)  # now genuinely ahead: command comes down
        assert pid.speedup < 2.0

    def test_invalid_construction(self):
        with pytest.raises(ControllerError):
            PIDController(0.0, 1.0)
        with pytest.raises(ControllerError):
            PIDController(1.0, -1.0)
        with pytest.raises(ControllerError):
            PIDController(1.0, 1.0, kp=-0.1)
        with pytest.raises(ControllerError):
            PIDController(1.0, 1.0, min_speedup=0.0)
        with pytest.raises(ControllerError):
            PIDController(1.0, 1.0, min_speedup=2.0, max_speedup=1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ControllerError):
            PIDController(10.0, 10.0).update(-1.0)


class TestHeuristicStep:
    def test_steps_up_when_slow(self):
        controller = HeuristicStepController(10.0, step_factor=1.5)
        assert controller.update(5.0) == pytest.approx(1.5)

    def test_steps_down_when_fast(self):
        controller = HeuristicStepController(
            10.0, step_factor=1.5, min_speedup=0.1
        )
        controller.update(5.0)  # up to 1.5
        assert controller.update(20.0) == pytest.approx(1.0)

    def test_holds_inside_band(self):
        controller = HeuristicStepController(10.0, tolerance=0.10)
        assert controller.update(9.5) == 1.0
        assert controller.update(10.5) == 1.0

    def test_limit_cycles_with_coarse_steps(self):
        """A big blind step never lands on the target: the rate ping-pongs
        across it forever (the Section 6 predictability critique)."""
        controller = HeuristicStepController(
            10.0, step_factor=2.0, tolerance=0.05, min_speedup=0.25
        )
        rates = run_plant(controller, baseline=10.0, steps=60, capacity=0.6)
        tail = rates[-20:]
        # 0.6 * 2^k can never be within 5% of 1.0 -> perpetual switching.
        assert any(rate < 9.5 for rate in tail)
        assert any(rate > 10.5 for rate in tail)

    def test_clamps(self):
        controller = HeuristicStepController(
            10.0, step_factor=10.0, max_speedup=3.0
        )
        controller.update(1.0)
        assert controller.speedup == 3.0

    def test_invalid_construction(self):
        with pytest.raises(ControllerError):
            HeuristicStepController(0.0)
        with pytest.raises(ControllerError):
            HeuristicStepController(10.0, step_factor=1.0)
        with pytest.raises(ControllerError):
            HeuristicStepController(10.0, tolerance=1.0)
        with pytest.raises(ControllerError):
            HeuristicStepController(10.0, min_speedup=-1.0)


class TestBangBang:
    def test_switches_levels(self):
        controller = BangBangController(10.0, high_speedup=4.0)
        assert controller.update(5.0) == 4.0
        assert controller.update(15.0) == 1.0

    def test_oscillates_forever(self):
        controller = BangBangController(10.0, high_speedup=4.0)
        rates = run_plant(controller, baseline=10.0, steps=30, capacity=0.5)
        # Alternates between 0.5*b*1 = 5 and 0.5*b*4 = 20 after warmup.
        assert sorted(set(rates[-10:])) == pytest.approx([5.0, 20.0])

    def test_invalid_construction(self):
        with pytest.raises(ControllerError):
            BangBangController(0.0, 2.0)
        with pytest.raises(ControllerError):
            BangBangController(10.0, high_speedup=1.0, low_speedup=2.0)


@given(
    baseline=st.floats(min_value=0.5, max_value=50.0),
    capacity=st.floats(min_value=0.3, max_value=1.0),
)
def test_paper_controller_deadbeat_for_any_capacity(baseline, capacity):
    """Property: on the nominal plant the integral controller reaches the
    target in one step after the first observation, for any capacity drop
    it has headroom to absorb -- the deadbeat pole at 0."""
    controller = HeartRateController(
        target_rate=baseline, baseline_rate=baseline, max_speedup=10.0
    )
    # First observation: rate = capacity * b; controller compensates.
    controller.update(capacity * baseline)
    # The controller's model predicts h = b * s; with the true plant gain
    # capacity * b the next rate is capacity * b * s.  Deadbeat holds when
    # the gain is modeled exactly; with a capacity drop the effective gain
    # error is `capacity`, still stable (pole 1 - capacity in (0, 0.7]).
    rates = run_plant(controller, baseline, steps=60, capacity=capacity)
    assert rates[-1] == pytest.approx(baseline, rel=0.02)
