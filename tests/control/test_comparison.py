"""Tests for the closed-loop evaluation harness and disturbance models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.control.comparison import ClosedLoopScenario, evaluate_controller
from repro.control.disturbances import (
    MeasurementNoise,
    constant_profile,
    pulse_profile,
    ramp_profile,
    sinusoid_profile,
    step_profile,
)
from repro.control.alternatives import (
    BangBangController,
    HeuristicStepController,
    PIDController,
)
from repro.core.controller import HeartRateController


class TestProfiles:
    def test_constant(self):
        profile = constant_profile(0.75)
        assert profile(0) == 0.75
        assert profile(1000) == 0.75

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constant_profile(0.0)

    def test_step(self):
        profile = step_profile(10, 0.5)
        assert profile(9) == 1.0
        assert profile(10) == 0.5
        assert profile(99) == 0.5

    def test_step_validation(self):
        with pytest.raises(ValueError):
            step_profile(-1, 0.5)
        with pytest.raises(ValueError):
            step_profile(1, 0.0)

    def test_pulse_matches_paper_scenario(self):
        """Cap imposed at 1/4, lifted at 3/4 of a 400-step run."""
        profile = pulse_profile(100, 300, 1.6 / 2.4)
        assert profile(0) == 1.0
        assert profile(100) == pytest.approx(1.6 / 2.4)
        assert profile(299) == pytest.approx(1.6 / 2.4)
        assert profile(300) == 1.0

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            pulse_profile(10, 10, 0.5)
        with pytest.raises(ValueError):
            pulse_profile(0, 10, -0.5)

    def test_ramp_endpoints_and_midpoint(self):
        profile = ramp_profile(10, 20, 0.5)
        assert profile(0) == 1.0
        assert profile(10) == 1.0
        assert profile(15) == pytest.approx(0.75)
        assert profile(20) == 0.5
        assert profile(50) == 0.5

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            ramp_profile(5, 5, 0.5)
        with pytest.raises(ValueError):
            ramp_profile(0, 5, 0.0)

    def test_sinusoid_oscillates_around_mean(self):
        profile = sinusoid_profile(period=20, amplitude=0.2)
        values = [profile(step) for step in range(40)]
        assert max(values) == pytest.approx(1.2, abs=0.01)
        assert min(values) == pytest.approx(0.8, abs=0.01)
        assert sum(values) / len(values) == pytest.approx(1.0, abs=0.01)

    def test_sinusoid_validation(self):
        with pytest.raises(ValueError):
            sinusoid_profile(1, 0.1)
        with pytest.raises(ValueError):
            sinusoid_profile(10, -0.1)
        with pytest.raises(ValueError):
            sinusoid_profile(10, 1.0)  # capacity would hit zero


class TestMeasurementNoise:
    def test_zero_sigma_is_identity(self):
        noise = MeasurementNoise(sigma=0.0)
        assert noise.observe(7.0) == 7.0

    def test_reproducible_for_fixed_seed(self):
        first = MeasurementNoise(sigma=0.1, seed=42)
        second = MeasurementNoise(sigma=0.1, seed=42)
        samples_a = [first.observe(10.0) for _ in range(20)]
        samples_b = [second.observe(10.0) for _ in range(20)]
        assert samples_a == samples_b

    def test_reset_restarts_stream(self):
        noise = MeasurementNoise(sigma=0.1, seed=7)
        first = [noise.observe(10.0) for _ in range(5)]
        noise.reset()
        assert [noise.observe(10.0) for _ in range(5)] == first

    def test_truncation_keeps_rate_nonnegative(self):
        noise = MeasurementNoise(sigma=0.3, seed=1)
        assert all(noise.observe(10.0) >= 0.0 for _ in range(200))

    def test_unbiased_within_tolerance(self):
        noise = MeasurementNoise(sigma=0.05, seed=3)
        samples = [noise.observe(10.0) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementNoise(sigma=-0.1)
        with pytest.raises(ValueError):
            MeasurementNoise().observe(-1.0)


class TestScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopScenario(0.0, 1.0, 10)
        with pytest.raises(ValueError):
            ClosedLoopScenario(1.0, 0.0, 10)
        with pytest.raises(ValueError):
            ClosedLoopScenario(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            ClosedLoopScenario(1.0, 1.0, 10, max_speedup=0.0)


class TestEvaluation:
    def scenario(self, **overrides):
        defaults = dict(
            target_rate=10.0,
            baseline_rate=10.0,
            steps=200,
            capacity=step_profile(50, 0.5),
            max_speedup=5.0,
        )
        defaults.update(overrides)
        return ClosedLoopScenario(**defaults)

    def test_integral_controller_recovers_from_cap(self):
        controller = HeartRateController(10.0, 10.0, max_speedup=5.0)
        result = evaluate_controller(controller, self.scenario())
        # Settled on target before the cap...
        assert result.errors[49] == pytest.approx(0.0, abs=1e-9)
        # ...dips at the cap...
        assert result.errors[50] == pytest.approx(0.5)
        # ...and returns to target within a handful of control periods.
        assert result.settled_within(after=51, budget=25)
        assert result.heart_rates[-1] == pytest.approx(10.0, rel=0.02)

    def test_bang_bang_never_settles(self):
        controller = BangBangController(10.0, high_speedup=5.0)
        result = evaluate_controller(controller, self.scenario())
        assert result.settling_step(after=51) is None
        assert result.oscillation_crossings > 10

    def test_integral_beats_heuristic_on_itae(self):
        integral = HeartRateController(10.0, 10.0, max_speedup=5.0)
        heuristic = HeuristicStepController(
            10.0, step_factor=1.5, max_speedup=5.0
        )
        scenario = self.scenario()
        integral_score = evaluate_controller(integral, scenario).itae
        heuristic_score = evaluate_controller(heuristic, scenario).itae
        assert integral_score < heuristic_score

    def test_pid_with_integral_gains_matches_paper(self):
        paper = HeartRateController(10.0, 10.0, max_speedup=5.0)
        pid = PIDController(10.0, 10.0, ki=1.0, max_speedup=5.0)
        scenario = self.scenario()
        a = evaluate_controller(paper, scenario)
        b = evaluate_controller(pid, scenario)
        assert a.heart_rates == pytest.approx(b.heart_rates)

    def test_noise_does_not_destroy_convergence(self):
        controller = HeartRateController(10.0, 10.0, max_speedup=5.0)
        result = evaluate_controller(
            controller,
            self.scenario(noise=MeasurementNoise(sigma=0.02, seed=5)),
        )
        tail = result.heart_rates[-30:]
        assert sum(tail) / len(tail) == pytest.approx(10.0, rel=0.05)

    def test_unreachable_target_saturates(self):
        """Capacity drop beyond s_max: the loop pegs at the fastest
        setting, exactly the Figure 7 'without dynamic knobs' floor."""
        controller = HeartRateController(10.0, 10.0, max_speedup=2.0)
        result = evaluate_controller(
            controller, self.scenario(capacity=step_profile(10, 0.25))
        )
        # 0.25 * 2.0 = 0.5 of target is the best achievable.
        assert result.heart_rates[-1] == pytest.approx(5.0, rel=0.02)

    def test_evaluation_series_lengths(self):
        controller = HeartRateController(10.0, 10.0)
        scenario = self.scenario(steps=37)
        result = evaluate_controller(controller, scenario)
        assert len(result.heart_rates) == 37
        assert len(result.speedups) == 37
        assert len(result.errors) == 37

    def test_settling_step_validation(self):
        controller = HeartRateController(10.0, 10.0)
        result = evaluate_controller(controller, self.scenario(steps=20))
        with pytest.raises(ValueError):
            result.settling_step(after=100)


@given(
    capacity_factor=st.floats(min_value=0.35, max_value=0.95),
    at_step=st.integers(min_value=5, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_integral_controller_always_recovers(capacity_factor, at_step):
    """Property: for any power-cap depth it has knob headroom to absorb,
    the paper's controller re-converges to the target."""
    controller = HeartRateController(10.0, 10.0, max_speedup=4.0)
    scenario = ClosedLoopScenario(
        target_rate=10.0,
        baseline_rate=10.0,
        steps=at_step + 120,
        capacity=step_profile(at_step, capacity_factor),
        max_speedup=4.0,
    )
    result = evaluate_controller(controller, scenario)
    assert result.heart_rates[-1] == pytest.approx(10.0, rel=0.02)
    assert result.settled_within(after=at_step, budget=100)
