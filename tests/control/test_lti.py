"""Tests for the Z-domain transfer-function toolkit (paper Eq. 5-8)."""

import math

import pytest

from repro.control.lti import (
    TransferFunction,
    TransferFunctionError,
    heartbeat_controller_tf,
    heartbeat_plant_tf,
    powerdial_closed_loop,
)


class TestConstruction:
    def test_denominator_made_monic(self):
        tf = TransferFunction([2.0], [2.0, -2.0])
        assert tf.numerator == (1.0,)
        assert tf.denominator == (1.0, -1.0)

    def test_leading_zeros_trimmed(self):
        tf = TransferFunction([0.0, 0.0, 1.0], [0.0, 1.0, -1.0])
        assert tf.numerator == (1.0,)
        assert tf.denominator == (1.0, -1.0)

    def test_noncausal_rejected(self):
        with pytest.raises(TransferFunctionError):
            TransferFunction([1.0, 0.0], [1.0])

    def test_zero_denominator_rejected(self):
        with pytest.raises(TransferFunctionError):
            TransferFunction([1.0], [0.0])

    def test_order(self):
        assert TransferFunction([1.0], [1.0, 0.0]).order == 1
        assert TransferFunction([1.0], [1.0, 0.0, 0.25]).order == 2

    def test_repr_round_trips_structure(self):
        tf = TransferFunction([1.0], [1.0, -0.5])
        assert "1.0" in repr(tf) and "-0.5" in repr(tf)


class TestEvaluation:
    def test_point_evaluation(self):
        # H(z) = 1 / (z - 0.5); H(2) = 1 / 1.5.
        tf = TransferFunction([1.0], [1.0, -0.5])
        assert tf(2.0) == pytest.approx(1.0 / 1.5)

    def test_evaluation_at_pole_raises(self):
        tf = TransferFunction([1.0], [1.0, -0.5])
        with pytest.raises(TransferFunctionError):
            tf(0.5)

    def test_dc_gain_is_value_at_one(self):
        tf = TransferFunction([0.5], [1.0, -0.5])
        assert tf.dc_gain() == pytest.approx(1.0)


class TestPolesZerosStability:
    def test_integrator_pole_on_unit_circle(self):
        integrator = TransferFunction([1.0], [1.0, -1.0])
        assert integrator.poles() == (pytest.approx(1.0),)
        assert not integrator.is_stable()

    def test_delay_pole_at_origin(self):
        delay = TransferFunction([1.0], [1.0, 0.0])
        assert delay.poles() == (pytest.approx(0.0),)
        assert delay.is_stable()

    def test_zeros(self):
        # N(z) = z - 0.25.
        tf = TransferFunction([1.0, -0.25], [1.0, 0.0, 0.0])
        assert tf.zeros() == (pytest.approx(0.25),)

    def test_gain_has_no_poles(self):
        gain = TransferFunction([3.0], [1.0])
        assert gain.poles() == ()
        assert gain.is_stable()
        assert gain.dominant_pole() == 0.0

    def test_convergence_time_deadbeat(self):
        delay = TransferFunction([1.0], [1.0, 0.0])
        assert delay.convergence_time() == 0.0

    def test_convergence_time_geometric(self):
        # Pole at 0.5: t_c = -4 / log10(0.5).
        tf = TransferFunction([0.5], [1.0, -0.5])
        assert tf.convergence_time() == pytest.approx(-4.0 / math.log10(0.5))

    def test_convergence_time_unstable(self):
        tf = TransferFunction([1.0], [1.0, -1.5])
        assert tf.convergence_time() == math.inf


class TestComposition:
    def test_cascade_multiplies_responses(self):
        delay = TransferFunction([1.0], [1.0, 0.0])
        double_delay = delay.cascade(delay)
        assert double_delay.impulse_response(4) == pytest.approx(
            [0.0, 0.0, 1.0, 0.0]
        )

    def test_parallel_adds_responses(self):
        delay = TransferFunction([1.0], [1.0, 0.0])
        doubled = delay.parallel(delay)
        assert doubled.impulse_response(3) == pytest.approx([0.0, 2.0, 0.0])

    def test_unity_feedback_closes_integrator_to_delay(self):
        # 1/(z-1) under unity feedback -> 1/z: the Eq. 7 -> Eq. 8 step.
        open_loop = TransferFunction([1.0], [1.0, -1.0])
        closed = open_loop.feedback()
        assert closed.impulse_response(4) == pytest.approx(
            [0.0, 1.0, 0.0, 0.0]
        )

    def test_feedback_with_element(self):
        # H = 1 with feedback K = 1 -> 1 / 2.
        gain = TransferFunction([1.0], [1.0])
        closed = gain.feedback(gain)
        assert closed.dc_gain() == pytest.approx(0.5)


class TestTimeDomain:
    def test_delay_shifts_input(self):
        delay = TransferFunction([1.0], [1.0, 0.0])
        assert delay.simulate([3.0, 1.0, 4.0, 1.0]) == pytest.approx(
            [0.0, 3.0, 1.0, 4.0]
        )

    def test_integrator_accumulates(self):
        # y[k] = y[k-1] + u[k-1] for H = 1/(z-1).
        integrator = TransferFunction([1.0], [1.0, -1.0])
        assert integrator.step_response(5) == pytest.approx(
            [0.0, 1.0, 2.0, 3.0, 4.0]
        )

    def test_geometric_decay(self):
        # H = 1 / (z - 0.5): impulse response 0, 1, 0.5, 0.25, ...
        tf = TransferFunction([1.0], [1.0, -0.5])
        assert tf.impulse_response(5) == pytest.approx(
            [0.0, 1.0, 0.5, 0.25, 0.125]
        )

    def test_settling_steps_geometric(self):
        # Step response of (1-a)/(z-a) approaches 1 like 1 - a^k.
        tf = TransferFunction([0.5], [1.0, -0.5])
        settled = tf.settling_steps(tolerance=0.02)
        # 0.5^k < 0.02 first at k = 6 (0.5^6 ~ 0.0156).
        assert settled == 6

    def test_settling_steps_unstable_raises(self):
        tf = TransferFunction([1.0], [1.0, -2.0])
        with pytest.raises(TransferFunctionError):
            tf.settling_steps()

    def test_invalid_horizon(self):
        tf = TransferFunction([1.0], [1.0, 0.0])
        with pytest.raises(TransferFunctionError):
            tf.step_response(0)
        with pytest.raises(TransferFunctionError):
            tf.impulse_response(0)
        with pytest.raises(TransferFunctionError):
            tf.settling_steps(tolerance=0.0)


class TestPaperLoop:
    """Execute the paper's Eq. 5-8 derivation."""

    def test_controller_tf_is_scaled_integrator(self):
        # F(z) = z / (b (z-1)).
        controller = heartbeat_controller_tf(baseline_rate=4.0)
        assert controller.numerator == pytest.approx((0.25, 0.0))
        assert controller.denominator == pytest.approx((1.0, -1.0))

    def test_plant_tf_is_scaled_delay(self):
        plant = heartbeat_plant_tf(baseline_rate=4.0)
        assert plant.impulse_response(3) == pytest.approx([0.0, 4.0, 0.0])

    @pytest.mark.parametrize("baseline", [0.5, 1.0, 7.25])
    def test_closed_loop_is_one_over_z(self, baseline):
        closed = powerdial_closed_loop(baseline)
        # Eq. 8: F_loop(z) = 1/z -- a pure delay.
        assert closed.impulse_response(5) == pytest.approx(
            [0.0, 1.0, 0.0, 0.0, 0.0]
        )
        assert closed.dc_gain() == pytest.approx(1.0)
        assert closed.convergence_time() == 0.0
        assert closed.is_stable()

    @pytest.mark.parametrize("gain_error", [0.25, 0.5, 1.5, 1.9])
    def test_mismodeled_gain_moves_pole(self, gain_error):
        closed = powerdial_closed_loop(2.0, gain_error=gain_error)
        dominant = closed.dominant_pole()
        assert abs(dominant - (1.0 - gain_error)) == pytest.approx(0.0, abs=1e-9)
        assert closed.is_stable()
        # Still converges to the target (unit DC gain), just not deadbeat.
        assert closed.dc_gain() == pytest.approx(1.0)

    def test_gain_error_of_two_is_marginal(self):
        closed = powerdial_closed_loop(2.0, gain_error=2.0)
        assert not closed.is_stable()

    def test_gain_error_beyond_two_diverges(self):
        closed = powerdial_closed_loop(2.0, gain_error=2.5)
        response = closed.step_response(40)
        assert abs(response[-1] - 1.0) > abs(response[20] - 1.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(TransferFunctionError):
            heartbeat_controller_tf(0.0)
        with pytest.raises(TransferFunctionError):
            heartbeat_plant_tf(-1.0)
        with pytest.raises(TransferFunctionError):
            powerdial_closed_loop(1.0, gain_error=0.0)
