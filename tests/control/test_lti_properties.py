"""Property-based tests for the transfer-function algebra."""

import math

from hypothesis import given, settings, strategies as st

from repro.control.lti import TransferFunction, powerdial_closed_loop

# Stable single-pole systems H = k / (z - a), |a| < 1.
stable_poles = st.floats(min_value=-0.9, max_value=0.9).filter(
    lambda a: abs(a) > 1e-6
)
gains = st.floats(min_value=0.1, max_value=10.0)
signals = st.lists(
    st.floats(min_value=-100.0, max_value=100.0), min_size=1, max_size=30
)


@given(pole=stable_poles, gain=gains, inputs=signals)
def test_simulation_is_linear(pole, gain, inputs):
    """Scaling the input scales the output (LTI homogeneity)."""
    tf = TransferFunction([gain], [1.0, -pole])
    base = tf.simulate(inputs)
    scaled = tf.simulate([3.0 * u for u in inputs])
    assert all(
        math.isclose(3.0 * b, s, rel_tol=1e-9, abs_tol=1e-9)
        for b, s in zip(base, scaled)
    )


@given(pole=stable_poles, gain=gains, first=signals, second=signals)
def test_simulation_superposes(pole, gain, first, second):
    """simulate(u1 + u2) == simulate(u1) + simulate(u2) (additivity)."""
    tf = TransferFunction([gain], [1.0, -pole])
    length = min(len(first), len(second))
    first, second = first[:length], second[:length]
    combined = tf.simulate([a + b for a, b in zip(first, second)])
    separate = [
        a + b for a, b in zip(tf.simulate(first), tf.simulate(second))
    ]
    assert all(
        math.isclose(c, s, rel_tol=1e-9, abs_tol=1e-6)
        for c, s in zip(combined, separate)
    )


@given(pole=stable_poles, gain=gains, inputs=signals)
def test_cascade_equals_sequential_simulation(pole, gain, inputs):
    """(F * G).simulate == G.simulate(F.simulate(.)) for LTI systems."""
    f = TransferFunction([gain], [1.0, -pole])
    g = TransferFunction([1.0], [1.0, 0.0])  # pure delay
    cascaded = f.cascade(g).simulate(inputs)
    sequential = g.simulate(f.simulate(inputs))
    assert all(
        math.isclose(c, s, rel_tol=1e-9, abs_tol=1e-6)
        for c, s in zip(cascaded, sequential)
    )


@given(pole=stable_poles, gain=gains)
def test_dc_gain_matches_step_response_limit(pole, gain):
    """The step response of a stable system converges to H(1)."""
    tf = TransferFunction([gain], [1.0, -pole])
    response = tf.step_response(300)
    assert math.isclose(response[-1], tf.dc_gain(), rel_tol=1e-3, abs_tol=1e-6)


@given(pole=stable_poles, gain=gains)
def test_parallel_doubles_dc_gain(pole, gain):
    tf = TransferFunction([gain], [1.0, -pole])
    assert math.isclose(
        tf.parallel(tf).dc_gain(), 2.0 * tf.dc_gain(), rel_tol=1e-9
    )


@given(
    baseline=st.floats(min_value=0.1, max_value=50.0),
    gain_error=st.floats(min_value=0.05, max_value=1.95),
)
@settings(max_examples=50)
def test_closed_loop_always_converges_for_stable_gain_errors(
    baseline, gain_error
):
    """For any 0 < k < 2 the mis-modeled loop keeps unit DC gain and a
    pole at 1 - k -- the robustness margin of the paper's design."""
    closed = powerdial_closed_loop(baseline, gain_error=gain_error)
    assert closed.is_stable()
    assert math.isclose(closed.dc_gain(), 1.0, rel_tol=1e-9)
    dominant = abs(closed.dominant_pole())
    assert math.isclose(dominant, abs(1.0 - gain_error), abs_tol=1e-9)
