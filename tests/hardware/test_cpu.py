"""Unit tests for the DVFS processor model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cpu import XEON_E5530_PSTATES, CpuError, Processor, PState


class TestPState:
    def test_valid_state(self):
        state = PState(frequency_ghz=2.4, voltage=1.0)
        assert state.frequency_ghz == 2.4

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(CpuError):
            PState(frequency_ghz=0.0)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(CpuError):
            PState(frequency_ghz=2.0, voltage=0.0)


class TestXeonPstates:
    def test_seven_states(self):
        """The paper's platform supports seven power states."""
        assert len(XEON_E5530_PSTATES) == 7

    def test_frequency_range_matches_paper(self):
        """Clock frequencies from 2.4 GHz to 1.6 GHz."""
        freqs = [s.frequency_ghz for s in XEON_E5530_PSTATES]
        assert freqs[0] == 2.4
        assert freqs[-1] == 1.6
        assert freqs == sorted(freqs, reverse=True)

    def test_figure6_axis_frequencies(self):
        freqs = [s.frequency_ghz for s in XEON_E5530_PSTATES]
        assert freqs == [2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6]

    def test_voltage_scales_with_frequency(self):
        volts = [s.voltage for s in XEON_E5530_PSTATES]
        assert volts == sorted(volts, reverse=True)
        assert volts[0] == pytest.approx(1.0)
        assert volts[-1] == pytest.approx(0.85)


class TestProcessor:
    def test_defaults_to_fastest_state(self):
        cpu = Processor()
        assert cpu.frequency_ghz == 2.4

    def test_set_frequency(self):
        cpu = Processor()
        cpu.set_frequency(1.6)
        assert cpu.frequency_ghz == 1.6

    def test_set_frequency_unknown_rejected(self):
        cpu = Processor()
        with pytest.raises(CpuError):
            cpu.set_frequency(3.0)

    def test_set_state_by_index(self):
        cpu = Processor()
        cpu.set_state(6)
        assert cpu.frequency_ghz == 1.6

    def test_set_state_out_of_range(self):
        cpu = Processor()
        with pytest.raises(CpuError):
            cpu.set_state(7)

    def test_work_time_scales_inversely_with_frequency(self):
        """CPU-bound scaling: t2 = (f_nodvfs / f_dvfs) * t1 (Section 3)."""
        cpu = Processor()
        t_fast = cpu.seconds_for_work(1e9)
        cpu.set_frequency(1.6)
        t_slow = cpu.seconds_for_work(1e9)
        assert t_slow / t_fast == pytest.approx(2.4 / 1.6)

    def test_work_time_scales_inversely_with_threads(self):
        cpu = Processor()
        assert cpu.seconds_for_work(8e9, threads=8) == pytest.approx(
            cpu.seconds_for_work(1e9, threads=1)
        )

    def test_zero_work_takes_zero_time(self):
        assert Processor().seconds_for_work(0.0) == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(CpuError):
            Processor().seconds_for_work(-1.0)

    def test_bad_threads_rejected(self):
        with pytest.raises(CpuError):
            Processor().seconds_for_work(1.0, threads=0)

    def test_slowdown_vs_max(self):
        cpu = Processor()
        assert cpu.slowdown_vs_max() == pytest.approx(1.0)
        cpu.set_frequency(1.6)
        assert cpu.slowdown_vs_max() == pytest.approx(1.5)

    def test_pstates_sorted_fastest_first_regardless_of_input_order(self):
        cpu = Processor(pstates=(PState(1.0), PState(2.0), PState(1.5)))
        assert [s.frequency_ghz for s in cpu.pstates] == [2.0, 1.5, 1.0]

    def test_requires_at_least_one_pstate(self):
        with pytest.raises(CpuError):
            Processor(pstates=())

    @given(
        work=st.floats(min_value=1.0, max_value=1e12),
        state=st.integers(min_value=0, max_value=6),
    )
    def test_work_time_positive_and_proportional(self, work, state):
        cpu = Processor()
        cpu.set_state(state)
        t1 = cpu.seconds_for_work(work)
        t2 = cpu.seconds_for_work(2.0 * work)
        assert t1 > 0
        assert t2 == pytest.approx(2.0 * t1)
