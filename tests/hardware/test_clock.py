"""Unit tests for the virtual clock."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.clock import ClockError, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.5).now == 5.5

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now == pytest.approx(3.0)

    def test_zero_advance_allowed(self):
        clock = VirtualClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock(1.0)
        with pytest.raises(ClockError):
            clock.advance(-0.1)
        assert clock.now == 1.0

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)

    def test_advance_to_now_is_noop(self):
        clock = VirtualClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_monotonicity_property(self, increments):
        clock = VirtualClock()
        previous = clock.now
        for step in increments:
            clock.advance(step)
            assert clock.now >= previous
            previous = clock.now

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_time_is_sum_of_increments(self, increments):
        clock = VirtualClock()
        clock_total = 0.0
        for step in increments:
            clock.advance(step)
            clock_total += step
        assert clock.now == pytest.approx(clock_total)
