"""Unit tests for the power model and the sampling power meter."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cpu import XEON_E5530_PSTATES, Processor
from repro.hardware.power import PowerError, PowerMeter, PowerModel


FASTEST = XEON_E5530_PSTATES[0]
SLOWEST = XEON_E5530_PSTATES[-1]


class TestPowerModel:
    def test_idle_power_matches_paper(self):
        """Typical idle power is approximately 90 watts."""
        model = PowerModel()
        assert model.power(0.0, FASTEST, 2.4) == pytest.approx(90.0)

    def test_full_load_at_max_frequency_matches_paper(self):
        """Measured power reaches 220 watts at full load."""
        model = PowerModel()
        assert model.power(1.0, FASTEST, 2.4) == pytest.approx(220.0)

    def test_dvfs_reduces_loaded_power(self):
        model = PowerModel()
        fast = model.power(1.0, FASTEST, 2.4)
        slow = model.power(1.0, SLOWEST, 2.4)
        assert slow < fast

    def test_dvfs_savings_fraction_is_plausible(self):
        """Figure 6 shows roughly 16-21%% full-system savings at 1.6 GHz."""
        model = PowerModel()
        fast = model.power(1.0, FASTEST, 2.4)
        slow = model.power(1.0, SLOWEST, 2.4)
        saving = (fast - slow) / fast
        assert 0.10 < saving < 0.35

    def test_power_monotone_in_utilization(self):
        model = PowerModel()
        values = [model.power(u / 10, FASTEST, 2.4) for u in range(11)]
        assert values == sorted(values)

    def test_power_never_below_floor(self):
        model = PowerModel()
        assert model.power(0.0, SLOWEST, 2.4) >= model.floor_watts

    def test_utilization_out_of_range_rejected(self):
        model = PowerModel()
        with pytest.raises(PowerError):
            model.power(1.5, FASTEST, 2.4)
        with pytest.raises(PowerError):
            model.power(-0.1, FASTEST, 2.4)

    def test_invalid_model_parameters_rejected(self):
        with pytest.raises(PowerError):
            PowerModel(idle_watts=100, peak_watts=90)
        with pytest.raises(PowerError):
            PowerModel(idle_watts=-1)
        with pytest.raises(PowerError):
            PowerModel(floor_watts=95.0)

    @given(
        u=st.floats(min_value=0, max_value=1),
        state=st.integers(min_value=0, max_value=6),
    )
    def test_power_bounded_between_floor_and_peak(self, u, state):
        model = PowerModel()
        watts = model.power(u, XEON_E5530_PSTATES[state], 2.4)
        assert model.floor_watts <= watts <= model.peak_watts + 1e-9


class TestPowerMeter:
    def test_samples_at_one_second_intervals(self):
        meter = PowerMeter()
        meter.observe(0.0, 3.5, 100.0)
        assert [s.timestamp for s in meter.samples] == [1.0, 2.0, 3.0]
        assert all(s.watts == 100.0 for s in meter.samples)

    def test_mean_power_over_mixed_intervals(self):
        meter = PowerMeter()
        meter.observe(0.0, 2.0, 200.0)
        meter.observe(2.0, 4.0, 100.0)
        assert meter.mean_power() == pytest.approx(150.0)

    def test_energy_integrates_exactly(self):
        meter = PowerMeter()
        meter.observe(0.0, 0.5, 200.0)
        meter.observe(0.5, 1.0, 100.0)
        assert meter.energy_joules == pytest.approx(150.0)

    def test_mean_power_requires_samples(self):
        meter = PowerMeter()
        meter.observe(0.0, 0.5, 100.0)  # shorter than one interval
        with pytest.raises(PowerError):
            meter.mean_power()

    def test_rejects_backwards_intervals(self):
        meter = PowerMeter()
        meter.observe(0.0, 1.0, 100.0)
        with pytest.raises(PowerError):
            meter.observe(0.5, 2.0, 100.0)

    def test_rejects_inverted_interval(self):
        meter = PowerMeter()
        with pytest.raises(PowerError):
            meter.observe(2.0, 1.0, 100.0)

    def test_reset_clears_state(self):
        meter = PowerMeter()
        meter.observe(0.0, 2.0, 100.0)
        meter.reset()
        assert meter.samples == []
        assert meter.energy_joules == 0.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(PowerError):
            PowerMeter(interval=0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),
                st.floats(min_value=80.0, max_value=220.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_energy_equals_sum_of_interval_energies(self, segments):
        meter = PowerMeter()
        t = 0.0
        expected = 0.0
        for duration, watts in segments:
            meter.observe(t, t + duration, watts)
            expected += watts * duration
            t += duration
        assert meter.energy_joules == pytest.approx(expected)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=3.0),
                st.floats(min_value=80.0, max_value=220.0),
            ),
            min_size=3,
            max_size=30,
        )
    )
    def test_mean_power_within_observed_bounds(self, segments):
        meter = PowerMeter()
        t = 0.0
        for duration, watts in segments:
            meter.observe(t, t + duration, watts)
            t += duration
        low = min(w for _, w in segments)
        high = max(w for _, w in segments)
        assert low - 1e-9 <= meter.mean_power() <= high + 1e-9
