"""Unit tests for the simulated server machine."""

import pytest

from repro.hardware.machine import Machine, MachineError


class TestMachineExecution:
    def test_execute_advances_clock(self):
        machine = Machine()
        seconds = machine.execute(2.4e9)  # one second at 2.4 GHz x 1 thread? no: 8 threads
        assert machine.now == pytest.approx(seconds)

    def test_execute_full_threads_by_default(self):
        machine = Machine()
        # 8 threads at 2.4 GHz retire 8 * 2.4e9 units/second.
        seconds = machine.execute(8 * 2.4e9)
        assert seconds == pytest.approx(1.0)

    def test_execute_single_thread(self):
        machine = Machine()
        seconds = machine.execute(2.4e9, threads=1)
        assert seconds == pytest.approx(1.0)

    def test_dvfs_slows_execution(self):
        machine = Machine()
        t_fast = machine.execute(1e9)
        machine.set_frequency(1.6)
        t_slow = machine.execute(1e9)
        assert t_slow / t_fast == pytest.approx(2.4 / 1.6)

    def test_load_factor_scales_time(self):
        loaded = Machine(load_factor=4.0)
        unloaded = Machine()
        assert loaded.execute(1e9) == pytest.approx(4.0 * unloaded.execute(1e9))

    def test_invalid_load_factor_rejected(self):
        with pytest.raises(MachineError):
            Machine(load_factor=0.5)

    def test_invalid_threads_rejected(self):
        machine = Machine()
        with pytest.raises(MachineError):
            machine.execute(1.0, threads=9)
        with pytest.raises(MachineError):
            machine.execute(1.0, threads=0)

    def test_invalid_cores_rejected(self):
        with pytest.raises(MachineError):
            Machine(cores=0)


class TestMachinePowerAccounting:
    def test_busy_power_reaches_peak_at_full_load(self):
        machine = Machine()
        machine.execute(8 * 2.4e9 * 3)  # three seconds, all cores busy
        assert machine.meter.mean_power() == pytest.approx(220.0)

    def test_idle_power_is_idle_floor(self):
        machine = Machine()
        machine.idle(3.0)
        assert machine.meter.mean_power() == pytest.approx(90.0)

    def test_partial_utilization_power_between_idle_and_peak(self):
        machine = Machine()
        machine.execute(4 * 2.4e9 * 3, threads=4)  # half the cores
        mean = machine.meter.mean_power()
        assert 90.0 < mean < 220.0

    def test_energy_accumulates_across_busy_and_idle(self):
        machine = Machine()
        machine.execute(8 * 2.4e9)  # 1 s at 220 W
        machine.idle(1.0)  # 1 s at 90 W
        assert machine.meter.energy_joules == pytest.approx(310.0)

    def test_capped_machine_draws_less_at_full_load(self):
        capped = Machine()
        capped.set_frequency(1.6)
        capped.execute(8 * 1.6e9 * 3)  # three seconds busy at 1.6 GHz
        assert capped.meter.mean_power() < 220.0

    def test_idle_until_absolute_time(self):
        machine = Machine()
        machine.idle_until(5.0)
        assert machine.now == 5.0

    def test_idle_until_past_rejected(self):
        machine = Machine()
        machine.idle(2.0)
        with pytest.raises(MachineError):
            machine.idle_until(1.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(MachineError):
            Machine().idle(-1.0)

    def test_zero_idle_is_noop(self):
        machine = Machine()
        machine.idle(0.0)
        assert machine.now == 0.0
        assert machine.meter.energy_joules == 0.0

    def test_current_power_reports_instantaneous_draw(self):
        machine = Machine()
        assert machine.current_power(0.0) == pytest.approx(90.0)
        assert machine.current_power(1.0) == pytest.approx(220.0)
