"""Regenerate the golden-trace corpus.

Five small seeded datacenter scenarios, each committed as a journal
(``<name>.ndjson``) plus the expected replay billing document
(``<name>.bills.json``).  The parity suite
(``tests/datacenter/test_golden_traces.py``) replays every journal on
the *batched* engine and diffs the bills byte-for-byte against the
committed expectations — a frozen, reviewable record that the batched
kernel reproduces historic runs exactly.

Run from the repo root after any change that intentionally shifts
simulation results:

    PYTHONPATH=src python tests/data/golden/regenerate.py

and commit the rewritten corpus together with the change that moved it.
"""

from __future__ import annotations

import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

# Name -> run_datacenter keyword overrides (built lazily so importing
# this module for the scenario list stays cheap and side-effect free).
GOLDEN_NAMES = (
    "arbitrated",
    "budget_shock",
    "migrating",
    "chaos",
    "grayfail",
)


def golden_settings(name: str) -> dict:
    """The run_datacenter overrides for one corpus scenario."""
    from repro.datacenter.controlplane.budget import BudgetSchedule
    from repro.datacenter.faults import FaultPlan
    from repro.experiments.datacenter import DEFAULT_BUDGET_WATTS

    settings: dict = {"machines": 2}
    if name == "arbitrated":
        pass
    elif name == "budget_shock":
        settings["budget_trace"] = BudgetSchedule(
            ((15.0, 0.94 * DEFAULT_BUDGET_WATTS),)
        )
    elif name == "migrating":
        settings["policy"] = "migrating"
    elif name == "chaos":
        settings.update(chaos=1, chaos_seed=7)
    elif name == "grayfail":
        settings["faults"] = FaultPlan.generate(
            horizon=40.0,  # Scale.TINY's horizon
            machines=2,
            seed=7,
            kills=1,
            sensor_dropouts=2,
            actuator_drops=2,
            stragglers=1,
            unresponsive_after=4.0,
            reintegrate=5.0,
        )
    else:
        raise ValueError(f"unknown golden scenario {name!r}")
    return settings


def journal_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.ndjson"


def bills_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.bills.json"


def regenerate() -> None:
    from repro.experiments.common import Scale
    from repro.experiments.datacenter import (
        format_replay_bills,
        run_datacenter,
    )

    for name in GOLDEN_NAMES:
        experiment = run_datacenter(
            scale=Scale.TINY,
            journal=str(journal_path(name)),
            **golden_settings(name),
        )
        result = experiment.arbitrated
        bills_path(name).write_text(format_replay_bills(result))
        extras = ""
        if result.migrations:
            extras += f", {len(result.migrations)} migrations"
        if result.failures:
            extras += f", {len(result.failures)} failures"
        if result.faults:
            extras += f", {len(result.faults)} faults"
        print(f"{name}: {len(result.bills)} bills{extras}")
        if name == "migrating" and not result.migrations:
            sys.exit(
                "golden scenario 'migrating' recorded no migration — "
                "the corpus must cover a warm handoff"
            )
        if name in ("chaos", "grayfail") and not result.failures:
            sys.exit(
                f"golden scenario {name!r} recorded no machine failure — "
                "the corpus must cover a faulted run"
            )


if __name__ == "__main__":
    regenerate()
