"""Tests for the x264 benchmark (video encoder)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.base import run_job
from repro.apps.x264 import (
    BLOCK,
    Encoder,
    SUBME_PROFILES,
    X264App,
    ZIGZAG,
    block_bits,
    encode_block,
    estimate_motion,
    forward_transform,
    golomb_bits,
    inverse_transform,
    psnr,
    synthesize_video,
)
from repro.core.calibration import calibrate
from repro.core.knobs import KnobSpace, Parameter


class TestTransform:
    def test_dct_roundtrip_is_exact(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(0, 255, size=(BLOCK, BLOCK))
        assert np.allclose(inverse_transform(forward_transform(block)), block)

    def test_zigzag_is_a_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(BLOCK * BLOCK))

    def test_zigzag_starts_at_dc_and_walks_antidiagonals(self):
        assert ZIGZAG[0] == 0
        assert set(ZIGZAG[:3].tolist()) == {0, 1, 8}

    def test_golomb_bits_known_values(self):
        # value 0 -> mapped 0 -> 1 bit; value 1 -> mapped 1 -> 3 bits.
        assert golomb_bits(0) == 1
        assert golomb_bits(1) == 3
        assert golomb_bits(-1) == 3
        assert golomb_bits(2) == 5

    def test_flat_block_costs_few_bits(self):
        flat = np.zeros((BLOCK, BLOCK), dtype=np.int32)
        textured = np.arange(64, dtype=np.int32).reshape(8, 8) - 32
        assert block_bits(flat) < block_bits(textured)

    def test_coarser_quantizer_fewer_bits_more_error(self):
        rng = np.random.default_rng(2)
        residual = rng.normal(0, 12, size=(BLOCK, BLOCK))
        recon_fine, bits_fine, _ = encode_block(residual, qstep=2.0)
        recon_coarse, bits_coarse, _ = encode_block(residual, qstep=16.0)
        assert bits_coarse < bits_fine
        err_fine = np.mean((recon_fine - residual) ** 2)
        err_coarse = np.mean((recon_coarse - residual) ** 2)
        assert err_fine < err_coarse

    @given(qstep=st.floats(min_value=1.0, max_value=32.0))
    @settings(max_examples=15, deadline=None)
    def test_reconstruction_error_bounded_by_quantizer(self, qstep):
        rng = np.random.default_rng(3)
        residual = rng.normal(0, 10, size=(BLOCK, BLOCK))
        recon, _, _ = encode_block(residual, qstep)
        # Orthonormal DCT: max spatial error <= qstep/2 * 8 (all coefs off
        # by half a step, worst case).
        assert np.max(np.abs(recon - residual)) <= qstep * 4.0 + 1e-9

    def test_invalid_qstep_rejected(self):
        with pytest.raises(ValueError):
            encode_block(np.zeros((8, 8)), qstep=0.0)


class TestMotionEstimation:
    def make_pair(self, shift):
        rng = np.random.default_rng(5)
        reference = rng.uniform(0, 255, size=(32, 32))
        frame = np.roll(reference, shift, axis=(0, 1))
        return frame, reference

    def test_recovers_known_integer_shift(self):
        frame, reference = self.make_pair((2, -3))
        block = frame[8:16, 8:16]
        estimate = estimate_motion(
            block, [reference], 8, 8, merange=4, subme=1, ref_count=1
        )
        assert (estimate.mv_y, estimate.mv_x) == (-2, 3)
        assert estimate.cost == pytest.approx(0.0)

    def test_merange_too_small_misses_motion(self):
        frame, reference = self.make_pair((6, 0))
        block = frame[8:16, 8:16]
        found = estimate_motion(
            block, [reference], 8, 8, merange=8, subme=1, ref_count=1
        )
        missed = estimate_motion(
            block, [reference], 8, 8, merange=2, subme=1, ref_count=1
        )
        assert found.cost < missed.cost

    def test_subpel_refinement_improves_cost(self):
        rng = np.random.default_rng(7)
        reference = rng.uniform(0, 255, size=(32, 32))
        # Half-pel shifted target: average of neighbours.
        shifted = 0.5 * (reference[:, :-1] + reference[:, 1:])
        block = shifted[8:16, 8:16]
        integer = estimate_motion(
            block, [reference], 8, 8, merange=4, subme=1, ref_count=1
        )
        refined = estimate_motion(
            block, [reference], 8, 8, merange=4, subme=3, ref_count=1
        )
        assert refined.cost < integer.cost

    def test_work_grows_with_subme(self):
        frame, reference = self.make_pair((1, 1))
        block = frame[8:16, 8:16]
        works = [
            estimate_motion(
                block, [reference], 8, 8, merange=4, subme=s, ref_count=1
            ).work
            for s in (1, 3, 5, 7)
        ]
        assert all(b >= a for a, b in zip(works, works[1:]))

    def test_work_grows_with_merange_and_ref(self):
        frame, reference = self.make_pair((1, 1))
        block = frame[8:16, 8:16]
        refs = [reference, np.roll(reference, 1, axis=0)]
        small = estimate_motion(block, refs, 8, 8, merange=2, subme=1, ref_count=1)
        large = estimate_motion(block, refs, 8, 8, merange=8, subme=1, ref_count=2)
        assert large.work > 2.0 * small.work

    def test_more_references_never_hurt_cost(self):
        frame, reference = self.make_pair((2, 2))
        other = np.roll(reference, (4, 4), axis=(0, 1))
        block = frame[8:16, 8:16]
        one = estimate_motion(block, [other, reference], 8, 8, 4, 1, ref_count=1)
        two = estimate_motion(block, [other, reference], 8, 8, 4, 1, ref_count=2)
        assert two.cost <= one.cost

    def test_subme_profiles_are_monotone_in_effort(self):
        iters = [
            (p.half_pel_iterations + p.quarter_pel_iterations)
            for p in (SUBME_PROFILES[level] for level in range(1, 8))
        ]
        assert all(b >= a for a, b in zip(iters, iters[1:]))

    def test_invalid_arguments_rejected(self):
        block = np.zeros((8, 8))
        reference = np.zeros((32, 32))
        with pytest.raises(ValueError):
            estimate_motion(block, [reference], 0, 0, merange=0, subme=1, ref_count=1)
        with pytest.raises(ValueError):
            estimate_motion(block, [reference], 0, 0, merange=2, subme=9, ref_count=1)
        with pytest.raises(ValueError):
            estimate_motion(block, [reference], 0, 0, merange=2, subme=1, ref_count=0)
        with pytest.raises(ValueError):
            estimate_motion(block, [], 0, 0, merange=2, subme=1, ref_count=1)


class TestEncoder:
    def test_first_frame_is_intra(self):
        video = synthesize_video("v", frames=3, seed=1)
        encoder = Encoder()
        stats = encoder.encode_frame(video.frames[0], subme=1, merange=2, ref=1)
        assert stats.frame_type == "I"
        stats2 = encoder.encode_frame(video.frames[1], subme=1, merange=2, ref=1)
        assert stats2.frame_type == "P"

    def test_reconstruction_quality_reasonable(self):
        video = synthesize_video("v", frames=4, seed=2)
        encoder = Encoder(qstep=6.0)
        for t in range(4):
            stats = encoder.encode_frame(video.frames[t], subme=5, merange=4, ref=2)
            assert stats.psnr_db > 30.0

    def test_p_frames_cheaper_than_intra_in_bits(self):
        video = synthesize_video("v", frames=4, seed=3)
        encoder = Encoder()
        intra = encoder.encode_frame(video.frames[0], subme=5, merange=4, ref=2)
        inter = encoder.encode_frame(video.frames[1], subme=5, merange=4, ref=2)
        assert inter.bits < intra.bits

    def test_better_search_fewer_bits(self):
        """More ME effort -> better prediction -> smaller residual bits."""
        video = synthesize_video("v", frames=8, seed=4)

        def total_bits(subme, merange, ref):
            encoder = Encoder()
            return sum(
                encoder.encode_frame(f, subme=subme, merange=merange, ref=ref).bits
                for f in video.frames
            )

        assert total_bits(7, 8, 3) < total_bits(1, 1, 1)

    def test_reset_forces_intra(self):
        video = synthesize_video("v", frames=2, seed=5)
        encoder = Encoder()
        encoder.encode_frame(video.frames[0], subme=1, merange=1, ref=1)
        encoder.reset()
        stats = encoder.encode_frame(video.frames[1], subme=1, merange=1, ref=1)
        assert stats.frame_type == "I"

    def test_odd_dimensions_rejected(self):
        encoder = Encoder()
        with pytest.raises(ValueError):
            encoder.encode_frame(np.zeros((20, 20)), subme=1, merange=1, ref=1)

    def test_psnr_of_identical_is_capped(self):
        frame = np.full((8, 8), 128.0)
        assert psnr(frame, frame) == 100.0


class TestApp:
    def test_default_configuration(self):
        config = X264App.default_configuration()
        assert config == {"subme": 7, "merange": 8, "ref": 3}

    def test_run_job_outputs_psnr_bits_per_frame(self):
        video = synthesize_video("v", frames=5, seed=6)
        outputs, work, _ = run_job(
            X264App(), {"subme": 2, "merange": 2, "ref": 1}, video
        )
        assert len(outputs) == 5
        for psnr_db, bits in outputs:
            assert psnr_db > 20.0 and bits > 0
        assert work > 0

    def test_calibration_shape_matches_paper(self):
        """Max speedup in the paper's ~4.5x ballpark with small QoS loss."""
        video = synthesize_video("v", frames=8, seed=7)
        space = KnobSpace(
            (
                Parameter("subme", (1, 7), 7),
                Parameter("merange", (1, 8), 8),
                Parameter("ref", (1, 3), 3),
            )
        )
        result = calibrate(X264App, [video], knob_space=space)
        fastest = max(result.points, key=lambda p: p.speedup)
        assert 2.0 < fastest.speedup < 9.0
        assert 0.0 < fastest.qos_loss < 0.3
