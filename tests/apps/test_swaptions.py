"""Tests for the swaptions benchmark (HJM Monte-Carlo pricer)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.base import run_job
from repro.apps.swaptions import (
    DEFAULT_TRIALS,
    Swaption,
    SwaptionsApp,
    TRIAL_VALUES,
    generate_swaptions,
    price_swaption,
    production_portfolios,
    simulation_work,
    training_portfolios,
)
from repro.core.calibration import calibrate
from repro.core.knobs import KnobSpace, Parameter


@pytest.fixture(scope="module")
def swaption():
    return Swaption(identifier=7)


class TestPricer:
    def test_price_is_positive_for_at_the_money(self, swaption):
        price, _ = price_swaption(swaption, 4000)
        assert price > 0.0

    def test_price_is_deterministic(self, swaption):
        assert price_swaption(swaption, 1000) == price_swaption(swaption, 1000)

    def test_common_random_numbers_prefix_property(self, swaption):
        """Pricing with n trials equals the mean of the first n payoffs of
        the 2n-trial stream (different -sm values share randomness)."""
        price_n, _ = price_swaption(swaption, 500)
        price_2n, _ = price_swaption(swaption, 1000)
        # Both contain the same first 500 payoffs; they differ only by the
        # second half's contribution.
        assert price_2n != price_n  # genuinely more information
        # Error shrinks with more trials (against a 40k-trial reference).
        reference, _ = price_swaption(swaption, 40_000)
        err_n = abs(price_n - reference)
        err_8n = abs(price_swaption(swaption, 4000)[0] - reference)
        assert err_8n < err_n

    def test_standard_error_shrinks_like_sqrt_n(self, swaption):
        _, se_1k = price_swaption(swaption, 1000)
        _, se_16k = price_swaption(swaption, 16_000)
        assert se_16k == pytest.approx(se_1k / 4.0, rel=0.25)

    def test_deep_in_the_money_worth_more(self):
        cheap = Swaption(identifier=1, strike=0.06, initial_rate=0.04)
        rich = Swaption(identifier=1, strike=0.02, initial_rate=0.04)
        assert price_swaption(rich, 4000)[0] > price_swaption(cheap, 4000)[0]

    def test_zero_volatility_gives_deterministic_payoff(self):
        swaption = Swaption(identifier=3, volatility=0.0, strike=0.02)
        _, stderr = price_swaption(swaption, 100)
        assert stderr == pytest.approx(0.0, abs=1e-12)

    def test_invalid_trials_rejected(self, swaption):
        with pytest.raises(ValueError):
            price_swaption(swaption, 0)

    def test_invalid_contract_rejected(self):
        with pytest.raises(ValueError):
            Swaption(identifier=1, maturity_years=0.0)
        with pytest.raises(ValueError):
            Swaption(identifier=1, volatility=-1.0)

    @given(trials=st.integers(min_value=100, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_work_scales_linearly_with_trials(self, trials):
        swaption = Swaption(identifier=2)
        assert simulation_work(swaption, 2 * trials) == pytest.approx(
            2.0 * simulation_work(swaption, trials)
        )


class TestWorkload:
    def test_generate_is_deterministic(self):
        assert generate_swaptions(4, seed=5) == generate_swaptions(4, seed=5)

    def test_different_seeds_differ(self):
        assert generate_swaptions(4, seed=5) != generate_swaptions(4, seed=6)

    def test_training_and_production_disjoint(self):
        train = {s.identifier for job in training_portfolios() for s in job}
        prod = {s.identifier for job in production_portfolios() for s in job}
        assert not train & prod

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            generate_swaptions(0, seed=1)


class TestApp:
    def test_default_configuration_is_max_trials(self):
        assert SwaptionsApp.default_configuration() == {"sm": DEFAULT_TRIALS}

    def test_paper_knob_structure(self):
        """100 settings in equal increments, default = most accurate."""
        assert len(TRIAL_VALUES) == 100
        steps = {b - a for a, b in zip(TRIAL_VALUES, TRIAL_VALUES[1:])}
        assert steps == {200}

    def test_run_job_prices_each_swaption(self):
        job = generate_swaptions(3, seed=9)
        outputs, work, tracker = run_job(SwaptionsApp(), {"sm": 1000}, job)
        assert len(outputs) == 3
        assert all(price >= 0.0 for price in outputs)
        assert work == pytest.approx(sum(simulation_work(s, 1000) for s in job))

    def test_calibration_speedup_tracks_trial_ratio(self):
        space = KnobSpace(
            (Parameter("sm", (1000, 5000, DEFAULT_TRIALS), DEFAULT_TRIALS),)
        )
        result = calibrate(
            SwaptionsApp, [generate_swaptions(4, seed=3)], knob_space=space
        )
        point = result.point_for({"sm": 1000})
        assert point.speedup == pytest.approx(DEFAULT_TRIALS / 1000, rel=0.01)
        assert point.qos_loss > 0.0

    def test_qos_loss_monotone_in_trials(self):
        """Fewer trials -> more price distortion (Figure 5a shape)."""
        space = KnobSpace(
            (Parameter("sm", (400, 4000, DEFAULT_TRIALS), DEFAULT_TRIALS),)
        )
        result = calibrate(
            SwaptionsApp, [generate_swaptions(6, seed=4)], knob_space=space
        )
        loss_400 = result.point_for({"sm": 400}).qos_loss
        loss_4000 = result.point_for({"sm": 4000}).qos_loss
        assert loss_400 > loss_4000 > 0.0
        assert loss_400 < 0.15  # acceptably small, as in the paper
