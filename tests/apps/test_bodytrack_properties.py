"""Property-based tests on the particle filter's statistical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.bodytrack import (
    AnnealedParticleFilter,
    POSE_DIMENSIONS,
    generate_sequence,
    joint_positions,
)
from repro.apps.bodytrack.particle_filter import AnnealedParticleFilter as APF


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence(frames=6, seed=77)


class TestResampling:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_systematic_resample_indices_valid(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.01, 1.0, size=50)
        weights /= weights.sum()
        indices = APF._systematic_resample(weights, rng)
        assert indices.shape == (50,)
        assert indices.min() >= 0 and indices.max() < 50

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_resample_frequency_tracks_weight(self, seed):
        """A particle with half the total weight is drawn ~half the time."""
        rng = np.random.default_rng(seed)
        weights = np.full(100, 0.5 / 99)
        weights[0] = 0.5
        indices = APF._systematic_resample(weights, rng)
        count = int(np.sum(indices == 0))
        assert 45 <= count <= 55  # systematic resampling is low-variance

    def test_degenerate_weights_pick_single_particle(self):
        rng = np.random.default_rng(0)
        weights = np.zeros(10)
        weights[3] = 1.0
        indices = APF._systematic_resample(weights, rng)
        assert np.all(indices == 3)


class TestFilterBehaviour:
    def test_determinism_across_instances(self, sequence):
        def run():
            pf = AnnealedParticleFilter(
                cameras=sequence.cameras, particles=120, layers=2, seed=5
            )
            pf.reset(sequence.initial_pose)
            return [pf.step(obs)[0] for obs in sequence.observations]

        first, second = run(), run()
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_estimates_are_finite(self, sequence):
        pf = AnnealedParticleFilter(
            cameras=sequence.cameras, particles=60, layers=3, seed=2
        )
        pf.reset(sequence.initial_pose)
        for obs in sequence.observations:
            estimate, work = pf.step(obs)
            assert np.all(np.isfinite(estimate))
            assert work > 0

    @given(layers=st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_work_linear_in_layers(self, layers, sequence):
        pf = AnnealedParticleFilter(
            cameras=sequence.cameras, particles=100, layers=layers, seed=2
        )
        pf.reset(sequence.initial_pose)
        _, work = pf.step(sequence.observations[0])
        pf_one = AnnealedParticleFilter(
            cameras=sequence.cameras, particles=100, layers=1, seed=2
        )
        pf_one.reset(sequence.initial_pose)
        _, work_one = pf_one.step(sequence.observations[0])
        assert work == pytest.approx(layers * work_one)

    def test_more_layers_reduce_energy_of_estimate(self, sequence):
        """Annealing drives the estimate toward the observation optimum."""

        def estimate_energy(layers):
            pf = AnnealedParticleFilter(
                cameras=sequence.cameras, particles=400, layers=layers, seed=3
            )
            pf.reset(sequence.initial_pose)
            estimate = None
            for obs in sequence.observations[:3]:
                estimate, _ = pf.step(obs)
            # Energy of the final estimate against the last observation.
            joints = estimate.reshape(1, 13, 2)
            total = 0.0
            for cam_index, camera in enumerate(sequence.cameras):
                residual = camera.project(joints) - sequence.observations[2][cam_index]
                total += float(np.sum(residual**2))
            return total

        assert estimate_energy(5) < estimate_energy(1) * 1.5
