"""Property-based tests on the encoder's transform/entropy invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.x264 import (
    BLOCK,
    block_bits,
    encode_block,
    forward_transform,
    golomb_bits,
    inverse_transform,
)
from repro.apps.x264.motion import _HADAMARD, _sample_patch


def blocks():
    return st.integers(min_value=0, max_value=2**31 - 1).map(
        lambda seed: np.random.default_rng(seed).uniform(
            -64.0, 64.0, size=(BLOCK, BLOCK)
        )
    )


class TestTransformProperties:
    @given(block=blocks())
    @settings(max_examples=25, deadline=None)
    def test_dct_preserves_energy(self, block):
        """Orthonormal DCT: Parseval's identity holds."""
        coefficients = forward_transform(block)
        assert np.sum(block**2) == pytest.approx(np.sum(coefficients**2))

    @given(block=blocks())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_identity(self, block):
        assert np.allclose(inverse_transform(forward_transform(block)), block)

    @given(block=blocks(), qstep=st.floats(min_value=0.5, max_value=32.0))
    @settings(max_examples=25, deadline=None)
    def test_coarser_quantization_never_costs_more_bits(self, block, qstep):
        _, bits_fine, _ = encode_block(block, qstep)
        _, bits_coarse, _ = encode_block(block, qstep * 2.0)
        assert bits_coarse <= bits_fine

    def test_hadamard_is_orthogonal(self):
        product = _HADAMARD @ _HADAMARD.T
        assert np.allclose(product, 8.0 * np.eye(8))


class TestGolombProperties:
    @given(value=st.integers(min_value=-10_000, max_value=10_000))
    def test_bits_positive_and_odd(self, value):
        bits = golomb_bits(value)
        assert bits >= 1
        assert bits % 2 == 1

    @given(value=st.integers(min_value=1, max_value=10_000))
    def test_sign_symmetric_within_one_level(self, value):
        assert abs(golomb_bits(value) - golomb_bits(-value)) <= 2

    @given(value=st.integers(min_value=0, max_value=10_000))
    def test_monotone_in_magnitude(self, value):
        assert golomb_bits(value + 1) >= golomb_bits(value)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_block_bits_bounded_below_by_terminator(self, seed, scale):
        rng = np.random.default_rng(seed)
        levels = np.round(rng.normal(0, scale, size=(BLOCK, BLOCK))).astype(
            np.int32
        )
        assert block_bits(levels) >= 2


class TestSamplePatch:
    def test_integer_offsets_slice_exactly(self):
        rng = np.random.default_rng(3)
        frame = rng.uniform(0, 255, size=(32, 32))
        patch = _sample_patch(frame, 4.0, 5.0, 8)
        assert np.array_equal(patch, frame[4:12, 5:13])

    def test_half_offsets_average_neighbours(self):
        frame = np.arange(64, dtype=float).reshape(8, 8)
        patch = _sample_patch(frame, 0.0, 0.5, 4)
        expected = 0.5 * (frame[:4, 0:4] + frame[:4, 1:5])
        assert np.allclose(patch, expected)

    @given(
        y=st.floats(min_value=-5.0, max_value=30.0),
        x=st.floats(min_value=-5.0, max_value=30.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_clipping_keeps_patch_in_bounds(self, y, x):
        frame = np.random.default_rng(1).uniform(0, 255, size=(32, 32))
        patch = _sample_patch(frame, y, x, 8)
        assert patch.shape == (8, 8)
        assert frame.min() - 1e-9 <= patch.min()
        assert patch.max() <= frame.max() + 1e-9
