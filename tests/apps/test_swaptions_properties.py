"""Property-based tests on the HJM pricer's financial invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.swaptions import Swaption, price_swaption

TRIALS = 3000


@st.composite
def swaption_params(draw):
    rate = draw(st.floats(min_value=0.02, max_value=0.06))
    return {
        "identifier": draw(st.integers(min_value=1, max_value=10_000)),
        "maturity_years": draw(st.sampled_from([0.5, 1.0, 2.0])),
        "tenor_years": draw(st.sampled_from([1.0, 2.0])),
        "strike": rate * draw(st.floats(min_value=0.8, max_value=1.2)),
        "initial_rate": rate,
        "volatility": draw(st.floats(min_value=0.005, max_value=0.02)),
    }


class TestPricingInvariants:
    @given(params=swaption_params())
    @settings(max_examples=15, deadline=None)
    def test_price_nonnegative(self, params):
        price, _ = price_swaption(Swaption(**params), TRIALS)
        assert price >= 0.0

    @given(params=swaption_params())
    @settings(max_examples=10, deadline=None)
    def test_payer_price_decreases_with_strike(self, params):
        """A payer swaption pays when rates exceed the strike: raising the
        strike can only lower the price."""
        low = Swaption(**{**params, "strike": params["strike"] * 0.9})
        high = Swaption(**{**params, "strike": params["strike"] * 1.1})
        price_low, _ = price_swaption(low, TRIALS)
        price_high, _ = price_swaption(high, TRIALS)
        assert price_low >= price_high - 1e-12

    @given(params=swaption_params())
    @settings(max_examples=10, deadline=None)
    def test_at_the_money_price_increases_with_volatility(self, params):
        """Optionality is worth more under more uncertainty."""
        params = {**params, "strike": params["initial_rate"]}
        calm = Swaption(**{**params, "volatility": 0.006})
        wild = Swaption(**{**params, "volatility": 0.02})
        price_calm, _ = price_swaption(calm, TRIALS)
        price_wild, _ = price_swaption(wild, TRIALS)
        assert price_wild >= price_calm - 1e-9

    @given(
        params=swaption_params(),
        trials=st.sampled_from([500, 1000, 2000]),
    )
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, params, trials):
        swaption = Swaption(**params)
        assert price_swaption(swaption, trials) == price_swaption(
            swaption, trials
        )

    @given(params=swaption_params())
    @settings(max_examples=10, deadline=None)
    def test_stderr_positive_with_volatility(self, params):
        swaption = Swaption(**{**params, "strike": params["initial_rate"] * 0.8})
        _, stderr = price_swaption(swaption, TRIALS)
        assert stderr >= 0.0
