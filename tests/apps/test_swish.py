"""Tests for the swish++ benchmark (search engine)."""

import numpy as np
import pytest

from repro.apps.base import run_job
from repro.apps.swish import (
    InvertedIndex,
    SwishApp,
    f_measure_at,
    generate_corpus,
    generate_queries,
    mean_f_measure_loss,
    precision_recall_f,
)
from repro.core.calibration import calibrate


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        documents=200, tokens_per_document=400, vocabulary_size=4000, seed=13
    )


@pytest.fixture(scope="module")
def index(corpus):
    return InvertedIndex(corpus)


@pytest.fixture(scope="module")
def queries(corpus):
    return generate_queries(corpus, count=40, seed=17)


class TestCorpus:
    def test_deterministic(self):
        a = generate_corpus(documents=5, seed=1)
        b = generate_corpus(documents=5, seed=1)
        assert all(
            np.array_equal(x.tokens, y.tokens)
            for x, y in zip(a.documents, b.documents)
        )

    def test_document_count_and_lengths(self, corpus):
        assert len(corpus) == 200
        lengths = [len(d) for d in corpus.documents]
        assert min(lengths) >= 400 * 0.7 - 1
        assert max(lengths) <= 400 * 1.3 + 1

    def test_zipf_head_dominates(self, corpus):
        """The most frequent word should vastly outnumber a mid-rank word."""
        counts = np.zeros(corpus.vocabulary_size)
        for document in corpus.documents:
            values, occurrences = np.unique(document.tokens, return_counts=True)
            counts[values] += occurrences
        assert counts[0] > 20 * counts[min(500, corpus.vocabulary_size - 1)]

    def test_stop_words_are_most_frequent(self, corpus):
        assert corpus.stop_words == frozenset(range(50))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus(documents=0)
        with pytest.raises(ValueError):
            generate_corpus(vocabulary_size=10, stop_word_count=10)


class TestIndex:
    def test_postings_cover_every_document_containing_term(self, corpus, index):
        term = corpus.documents[0].tokens[0]
        docs_with_term = {
            d.doc_id for d in corpus.documents if term in d.tokens
        }
        assert {doc for doc, _ in index.postings(int(term))} == docs_with_term

    def test_search_returns_at_most_max_results(self, index, queries):
        results, _ = index.search(list(queries[0]), max_results=5)
        assert len(results) <= 5

    def test_search_ranked_descending(self, index, queries):
        results, _ = index.search(list(queries[0]), max_results=50)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_truncation_preserves_top_ranks(self, index, queries):
        """The max-results knob only drops the tail (paper Section 5.3)."""
        full, _ = index.search(list(queries[0]), max_results=100)
        truncated, _ = index.search(list(queries[0]), max_results=10)
        assert [r.doc_id for r in truncated] == [r.doc_id for r in full[:10]]

    def test_fewer_results_cost_less_work(self, index, queries):
        _, work_100 = index.search(list(queries[0]), max_results=100)
        _, work_5 = index.search(list(queries[0]), max_results=5)
        assert work_5 < work_100

    def test_unknown_term_matches_nothing(self, index):
        results, _ = index.search([999_999], max_results=10)
        assert results == []

    def test_invalid_max_results_rejected(self, index):
        with pytest.raises(ValueError):
            index.search([1], max_results=0)


class TestQueries:
    def test_deterministic(self, corpus):
        assert generate_queries(corpus, 10, seed=1) == generate_queries(
            corpus, 10, seed=1
        )

    def test_queries_exclude_stop_words(self, corpus, queries):
        for query in queries:
            assert not set(query) & corpus.stop_words

    def test_query_lengths_in_range(self, queries):
        assert all(1 <= len(q) <= 3 for q in queries)

    def test_invalid_count_rejected(self, corpus):
        with pytest.raises(ValueError):
            generate_queries(corpus, 0, seed=1)


class TestMetrics:
    def test_perfect_retrieval(self):
        prf = precision_recall_f([1, 2, 3], [1, 2, 3])
        assert (prf.precision, prf.recall, prf.f_measure) == (1.0, 1.0, 1.0)

    def test_half_recall(self):
        prf = precision_recall_f([1], [1, 2])
        assert prf.precision == 1.0
        assert prf.recall == 0.5
        assert prf.f_measure == pytest.approx(2 / 3)

    def test_empty_both_is_perfect(self):
        assert precision_recall_f([], []).f_measure == 1.0

    def test_no_overlap_is_zero(self):
        assert precision_recall_f([1], [2]).f_measure == 0.0

    def test_f_at_cutoff_truncation_math(self):
        """k=5 of a 10-deep baseline: P=1, R=0.5, F=2/3 (paper's 30%-ish
        loss at the fastest setting under P@10)."""
        baseline = list(range(100))
        observed = baseline[:5]
        prf = f_measure_at(observed, baseline, cutoff=10)
        assert prf.f_measure == pytest.approx(2 / 3)

    def test_mean_loss_over_batch(self):
        base = [[1, 2], [3, 4]]
        obs = [[1, 2], [3]]
        loss = mean_f_measure_loss(obs, base, cutoff=2)
        assert loss == pytest.approx((0.0 + (1 - 2 / 3)) / 2)

    def test_batch_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_f_measure_loss([[1]], [[1], [2]], cutoff=5)
        with pytest.raises(ValueError):
            mean_f_measure_loss([], [], cutoff=5)
        with pytest.raises(ValueError):
            f_measure_at([1], [1], cutoff=0)


class TestApp:
    def test_speedup_matches_paper_scale(self, index, queries):
        """~1.5x at 5 results (Section 1.2)."""
        factory = lambda: SwishApp(index=index)
        _, work_100, _ = run_job(factory(), {"max_results": 100}, queries)
        _, work_5, _ = run_job(factory(), {"max_results": 5}, queries)
        assert 1.2 < work_100 / work_5 < 1.9

    def test_precision_perfect_above_cutoff(self, index, queries):
        """P@10 loss is zero for every knob setting >= 10."""
        factory = lambda: SwishApp(index=index, qos_cutoff=10)
        metric = factory().qos_metric()
        base, _, _ = run_job(factory(), {"max_results": 100}, queries)
        for k in (10, 25, 50, 75):
            observed, _, _ = run_job(factory(), {"max_results": k}, queries)
            assert metric(base, observed) == pytest.approx(0.0)

    def test_loss_grows_as_knob_shrinks_at_p100(self, index, queries):
        """Under P@100 the loss increases monotonically as the knob drops
        (the Figure 5d line)."""
        factory = lambda: SwishApp(index=index, qos_cutoff=100)
        metric = factory().qos_metric()
        base, _, _ = run_job(factory(), {"max_results": 100}, queries)
        losses = []
        for k in (75, 50, 25, 10, 5):
            observed, _, _ = run_job(factory(), {"max_results": k}, queries)
            losses.append(metric(base, observed))
        assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:]))
        assert losses[-1] > 0.5  # large recall loss at k=5

    def test_calibration_over_paper_knob_values(self, index, queries):
        result = calibrate(lambda: SwishApp(index=index), [queries])
        assert len(result.points) == 6  # {5, 10, 25, 50, 75, 100}
        fastest = max(result.points, key=lambda p: p.speedup)
        assert fastest.configuration["max_results"] == 5
