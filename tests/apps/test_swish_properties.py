"""Property-based tests on the search engine's ranking invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.swish import (
    InvertedIndex,
    f_measure_at,
    generate_corpus,
    generate_queries,
    precision_recall_f,
)


@pytest.fixture(scope="module")
def index():
    corpus = generate_corpus(
        documents=120, tokens_per_document=250, vocabulary_size=3000, seed=55
    )
    return InvertedIndex(corpus)


class TestRankingInvariants:
    @given(k=st.sampled_from([1, 3, 10, 40, 100]))
    @settings(max_examples=10, deadline=None)
    def test_truncation_is_prefix_of_full_ranking(self, k, index):
        """For every knob value, results are a prefix of the baseline."""
        queries = generate_queries(index.corpus, count=5, seed=k)
        for query in queries:
            full, _ = index.search(list(query), max_results=100)
            truncated, _ = index.search(list(query), max_results=k)
            assert [r.doc_id for r in truncated] == [
                r.doc_id for r in full[:k]
            ]

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_work_monotone_in_max_results(self, seed, index):
        queries = generate_queries(index.corpus, count=1, seed=seed)
        works = [
            index.search(list(queries[0]), max_results=k)[1]
            for k in (5, 25, 100)
        ]
        assert works[0] <= works[1] <= works[2]

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_results_only_contain_matching_documents(self, seed, index):
        queries = generate_queries(index.corpus, count=1, seed=seed)
        query = list(queries[0])
        results, _ = index.search(query, max_results=100)
        matching = index.matching_documents(query)
        assert all(r.doc_id in matching for r in results)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_scores_deterministic(self, seed, index):
        queries = generate_queries(index.corpus, count=1, seed=seed)
        first, _ = index.search(list(queries[0]), max_results=50)
        second, _ = index.search(list(queries[0]), max_results=50)
        assert first == second


class TestMetricProperties:
    @given(
        returned=st.lists(
            st.integers(min_value=0, max_value=50), max_size=30, unique=True
        ),
        relevant=st.lists(
            st.integers(min_value=0, max_value=50), max_size=30, unique=True
        ),
    )
    def test_f_measure_bounded(self, returned, relevant):
        prf = precision_recall_f(returned, relevant)
        assert 0.0 <= prf.precision <= 1.0
        assert 0.0 <= prf.recall <= 1.0
        assert 0.0 <= prf.f_measure <= 1.0

    @given(
        relevant=st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    def test_perfect_retrieval_has_unit_f(self, relevant):
        prf = precision_recall_f(relevant, relevant)
        assert prf.f_measure == pytest.approx(1.0)

    @given(
        baseline=st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=10,
            max_size=60,
            unique=True,
        ),
        cutoff=st.sampled_from([5, 10, 20]),
    )
    def test_f_at_cutoff_monotone_in_returned_depth(self, baseline, cutoff):
        """Returning a longer prefix never lowers F@N."""
        values = []
        for depth in (2, 5, 10, 20, 40):
            observed = baseline[:depth]
            values.append(f_measure_at(observed, baseline, cutoff).f_measure)
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
