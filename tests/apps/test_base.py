"""Tests for the application protocol plumbing (WorkTracker, run_job)."""

import pytest

from repro.apps.base import ApplicationError, ItemResult, WorkTracker, run_job
from repro.tracing.variables import AddressSpace, Phase
from tests.core.toyapp import ToyApp, toy_jobs


class TestWorkTracker:
    def test_accumulates_total(self):
        tracker = WorkTracker()
        tracker.add("main", 5.0)
        tracker.add("main/kernel", 3.0)
        assert tracker.total == 8.0

    def test_records_events_in_order(self):
        tracker = WorkTracker()
        tracker.add("a", 1.0)
        tracker.add("b", 2.0)
        assert tracker.events == [("a", 1.0), ("b", 2.0)]

    def test_take_resets(self):
        tracker = WorkTracker()
        tracker.add("a", 4.0)
        assert tracker.take() == 4.0
        assert tracker.total == 0.0
        assert tracker.events == []

    def test_negative_work_rejected(self):
        with pytest.raises(ApplicationError):
            WorkTracker().add("a", -1.0)


class TestItemResult:
    def test_negative_work_rejected(self):
        with pytest.raises(ApplicationError):
            ItemResult(output=None, work=-1.0)

    def test_zero_work_allowed(self):
        assert ItemResult(output="x", work=0.0).work == 0.0


class TestRunJob:
    def test_outputs_per_item_and_total_work(self):
        job = toy_jobs(count=1, items=4)[0]
        outputs, work, tracker = run_job(ToyApp(), {"n": 100}, job)
        assert len(outputs) == 4
        assert work == pytest.approx(4 * 100 * 1.0e6)

    def test_space_phase_advances_after_first_item(self):
        job = toy_jobs(count=1, items=2)[0]
        space = AddressSpace(log_accesses=True)
        run_job(ToyApp(), {"n": 100}, job, space=space)
        assert space.phase is Phase.MAIN
        # Startup writes happened before the first heartbeat.
        assert all(
            access.phase is Phase.STARTUP for access in space.writes
        )

    def test_tracker_retains_section_events(self):
        job = toy_jobs(count=1, items=3)[0]
        _, _, tracker = run_job(ToyApp(), {"n": 50}, job)
        assert all(section == "main" for section, _ in tracker.events)
        assert len(tracker.events) == 3

    def test_default_knob_space_roundtrip(self):
        space = ToyApp.knob_space()
        assert space.default_configuration() == ToyApp.default_configuration()
        assert space.size == 5
