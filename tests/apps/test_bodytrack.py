"""Tests for the bodytrack benchmark (annealed particle filter)."""

import numpy as np
import pytest

from repro.apps.base import run_job
from repro.apps.bodytrack import (
    AnnealedParticleFilter,
    BodytrackApp,
    POSE_DIMENSIONS,
    generate_sequence,
    joint_positions,
    pose_vector_weights,
)
from repro.core.calibration import calibrate
from repro.core.knobs import KnobSpace, Parameter


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence(frames=12, seed=21)


class TestBodyModel:
    def test_joint_positions_shape(self):
        poses = np.zeros((5, POSE_DIMENSIONS))
        poses[:, 1] = 80.0
        joints = joint_positions(poses)
        assert joints.shape == (5, 13, 2)

    def test_pelvis_matches_root(self):
        pose = np.zeros(POSE_DIMENSIONS)
        pose[0], pose[1] = 30.0, 70.0
        joints = joint_positions(pose[None, :])[0]
        assert joints[0] == pytest.approx([30.0, 70.0])

    def test_upright_head_above_pelvis(self):
        pose = np.zeros(POSE_DIMENSIONS)
        pose[1] = 50.0
        joints = joint_positions(pose[None, :])[0]
        assert joints[2][1] > joints[0][1]  # head y > pelvis y

    def test_every_pose_dimension_moves_some_joint(self):
        base = np.zeros(POSE_DIMENSIONS)
        base[1] = 50.0
        reference = joint_positions(base[None, :])[0]
        for dim in range(POSE_DIMENSIONS):
            perturbed = base.copy()
            perturbed[dim] += 0.3
            moved = joint_positions(perturbed[None, :])[0]
            assert not np.allclose(moved, reference), f"dimension {dim} inert"

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ValueError):
            joint_positions(np.zeros((1, POSE_DIMENSIONS + 1)))

    def test_weights_proportional_to_magnitude(self):
        weights = pose_vector_weights(np.array([10.0, 1.0, 5.0]))
        assert weights[0] > weights[2] > weights[1]
        assert np.mean(weights) == pytest.approx(1.0)

    def test_zero_vector_weights_fall_back_to_ones(self):
        assert np.all(pose_vector_weights(np.zeros(4)) == 1.0)


class TestSyntheticSequences:
    def test_deterministic(self):
        a = generate_sequence(frames=6, seed=3)
        b = generate_sequence(frames=6, seed=3)
        assert np.array_equal(a.observations, b.observations)

    def test_observation_shape(self, sequence):
        frames, cameras, joints, coords = sequence.observations.shape
        assert (frames, cameras, joints, coords) == (12, 2, 13, 2)

    def test_observations_are_noisy_projections(self, sequence):
        clean = sequence.cameras[0].project(
            joint_positions(sequence.true_poses)
        )
        residual = sequence.observations[:, 0] - clean
        sigma = np.std(residual)
        assert 1.0 < sigma < 4.0  # configured noise is 2.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            generate_sequence(frames=1, seed=0)


class TestParticleFilter:
    def test_tracks_walking_body(self, sequence):
        """With generous knobs the filter follows the true joints."""
        pf = AnnealedParticleFilter(
            cameras=sequence.cameras, particles=1000, layers=5, seed=1
        )
        pf.reset(sequence.initial_pose)
        errors = []
        true_joints = joint_positions(sequence.true_poses)
        for t in range(sequence.frame_count):
            estimate, _ = pf.step(sequence.observations[t])
            errors.append(
                np.mean(np.abs(estimate - true_joints[t].ravel()))
            )
        assert np.mean(errors) < 6.0  # scene units; skeleton is ~130 tall

    def test_more_particles_track_better(self, sequence):
        def mean_error(particles, layers):
            pf = AnnealedParticleFilter(
                cameras=sequence.cameras,
                particles=particles,
                layers=layers,
                seed=1,
            )
            pf.reset(sequence.initial_pose)
            true_joints = joint_positions(sequence.true_poses)
            errs = []
            for t in range(sequence.frame_count):
                estimate, _ = pf.step(sequence.observations[t])
                errs.append(np.mean(np.abs(estimate - true_joints[t].ravel())))
            return float(np.mean(errs))

        assert mean_error(800, 4) < mean_error(50, 1)

    def test_work_scales_with_particles_and_layers(self, sequence):
        pf_small = AnnealedParticleFilter(
            cameras=sequence.cameras, particles=100, layers=2, seed=1
        )
        pf_small.reset(sequence.initial_pose)
        _, work_small = pf_small.step(sequence.observations[0])
        pf_big = AnnealedParticleFilter(
            cameras=sequence.cameras, particles=400, layers=4, seed=1
        )
        pf_big.reset(sequence.initial_pose)
        _, work_big = pf_big.step(sequence.observations[0])
        assert work_big == pytest.approx(8.0 * work_small)

    def test_step_before_reset_rejected(self, sequence):
        pf = AnnealedParticleFilter(
            cameras=sequence.cameras, particles=10, layers=1
        )
        with pytest.raises(RuntimeError):
            pf.step(sequence.observations[0])

    def test_invalid_knobs_rejected(self, sequence):
        with pytest.raises(ValueError):
            AnnealedParticleFilter(sequence.cameras, particles=0, layers=1)
        with pytest.raises(ValueError):
            AnnealedParticleFilter(sequence.cameras, particles=10, layers=0)


class TestApp:
    def test_default_configuration(self):
        config = BodytrackApp.default_configuration()
        assert config["particles"] == 2000 and config["layers"] == 5

    def test_run_job_produces_pose_per_frame(self, sequence):
        outputs, work, _ = run_job(
            BodytrackApp(), {"particles": 200, "layers": 2}, sequence
        )
        assert len(outputs) == sequence.frame_count
        assert all(out.shape == (26,) for out in outputs)
        assert work > 0

    def test_calibration_shape_matches_paper(self, sequence):
        """Speedup up to ~7x with modest QoS loss (Figure 5c)."""
        space = KnobSpace(
            (
                Parameter("particles", (100, 500, 2000), 2000),
                Parameter("layers", (1, 5), 5),
            )
        )
        result = calibrate(BodytrackApp, [sequence], knob_space=space)
        fastest = result.point_for({"particles": 100, "layers": 1})
        assert 4.0 < fastest.speedup < 12.0
        assert 0.0 < fastest.qos_loss < 0.4

    def test_qos_improves_with_more_particles(self, sequence):
        space = KnobSpace(
            (
                Parameter("particles", (100, 1000, 2000), 2000),
                Parameter("layers", (5,), 5),
            )
        )
        result = calibrate(BodytrackApp, [sequence], knob_space=space)
        assert (
            result.point_for({"particles": 100, "layers": 5}).qos_loss
            > result.point_for({"particles": 1000, "layers": 5}).qos_loss
        )
