"""Engine-level parity: step_mode="batched" vs the scalar reference.

The acceptance bar for the batched kernel: every standing bench
scenario kind — open, arbitrated, budget-shock, consolidation, chaos,
grayfail — produces *byte-identical* bills, cap/budget/migration
history, and journals whether instances step through the scalar loop or
the batched kernel, on the serial and sharded backends alike.  The
canonical result payload (the same record ``replay`` verifies) is the
comparison surface, so a single ``canonical_json`` equality pins every
float of every artifact.
"""

import json

import pytest

from repro.bench.scenarios import PoolScenario, build_pool_engine
from repro.datacenter.engine import STEP_MODES, EngineError
from repro.datacenter.journal.codec import canonical_json
from repro.datacenter.journal.reader import read_journal
from repro.datacenter.journal.replay import (
    journaled_run,
    replay,
    result_payload,
)
from repro.datacenter.journal.writer import JournalWriter

HORIZON = 20.0

SCENARIOS = {
    "open": PoolScenario(machines=2, horizon=HORIZON, rate=0.4),
    "arbitrated": PoolScenario(
        machines=2, horizon=HORIZON, rate=0.4, arbitrated=True
    ),
    "budget_shock": PoolScenario(
        machines=3, horizon=HORIZON, rate=0.4, arbitrated=True,
        budget_shock=True,
    ),
    "consolidation": PoolScenario(
        machines=3, horizon=HORIZON, rate=0.4, consolidation=True
    ),
    "chaos": PoolScenario(
        machines=3, horizon=HORIZON, rate=0.4, chaos_kills=1
    ),
    "grayfail": PoolScenario(
        machines=3, horizon=HORIZON, rate=0.4, grayfail=True
    ),
}


def canonical_result(scenario, backend="serial", workers=None,
                     step_mode="scalar"):
    engine = build_pool_engine(
        scenario, backend=backend, workers=workers, step_mode=step_mode
    )
    return canonical_json(result_payload(engine.run()))


@pytest.fixture(scope="module")
def scalar_references():
    """Serial scalar canonical payloads, computed once per scenario."""
    return {
        name: canonical_result(scenario)
        for name, scenario in SCENARIOS.items()
    }


class TestSerialParity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_batched_serial_matches_scalar(self, scalar_references, name):
        """Bills, histories, and sample digests: byte-identical."""
        got = canonical_result(SCENARIOS[name], step_mode="batched")
        assert got == scalar_references[name]


class TestShardedParity:
    @pytest.mark.parametrize("name", ["chaos", "grayfail"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_batched_sharded_matches_scalar(
        self, scalar_references, name, workers
    ):
        """The heaviest scenarios (kills, checkpoints, warm rebuilds,
        fault injection) across 1/2/4 workers."""
        got = canonical_result(
            SCENARIOS[name],
            backend="sharded",
            workers=workers,
            step_mode="batched",
        )
        assert got == scalar_references[name]


class TestJournalParity:
    def test_journals_are_byte_identical(self, tmp_path):
        """A batched run writes the exact bytes a scalar run writes —
        step_mode never leaks into records or checkpoints."""
        scenario = SCENARIOS["arbitrated"]
        raw = {}
        for mode in STEP_MODES:
            path = tmp_path / f"{mode}.ndjson"
            engine = build_pool_engine(scenario, step_mode=mode)
            writer = JournalWriter(str(path), {"scenario": "parity"})
            try:
                journaled_run(engine, writer)
            finally:
                writer.close()
            raw[mode] = path.read_bytes()
        assert raw["batched"] == raw["scalar"]

    def test_header_never_records_step_mode(self, tmp_path):
        path = tmp_path / "run.ndjson"
        engine = build_pool_engine(SCENARIOS["arbitrated"], step_mode="batched")
        writer = JournalWriter(str(path), {"scenario": "parity"})
        try:
            journaled_run(engine, writer)
        finally:
            writer.close()
        for line in path.read_text().splitlines():
            assert "step_mode" not in json.loads(line)


class TestReplayAcrossKernels:
    def test_batched_replay_of_experiment_journal(self, tmp_path):
        """A journal recorded by the experiment runner replays byte-
        exactly under the batched kernel (and vice versa is the default
        scalar path, covered by the standing replay tests)."""
        from repro.experiments.common import Scale
        from repro.experiments.datacenter import run_datacenter

        path = tmp_path / "experiment.ndjson"
        run_datacenter(scale=Scale.TINY, machines=2, journal=str(path))
        result = replay(str(path), step_mode="batched")
        journal = read_journal(str(path))
        assert canonical_json(result_payload(result)) == canonical_json(
            journal.result
        )

    def test_batched_recorded_journal_replays_scalar(self, tmp_path):
        """Record batched, replay scalar: the journal carries no trace
        of the kernel that produced it."""
        from repro.experiments.common import Scale
        from repro.experiments.datacenter import run_datacenter

        path = tmp_path / "batched.ndjson"
        run_datacenter(
            scale=Scale.TINY, machines=2, journal=str(path),
            step_mode="batched",
        )
        replay(str(path))  # raises JournalError on any divergence


class TestStepModeValidation:
    def test_unknown_step_mode_rejected(self):
        with pytest.raises(EngineError):
            build_pool_engine(SCENARIOS["open"], step_mode="vectorized")

    def test_step_modes_constant(self):
        assert STEP_MODES == ("scalar", "batched")
