"""Golden-trace corpus: batched replays pinned to committed bills.

Each journal under ``tests/data/golden/`` is a frozen, seeded run
(including one faulted run and one with a warm migration).  Replaying
it on the *batched* engine must reproduce the journaled result byte-
exactly (``replay`` raises otherwise) and render bills that match the
committed ``<name>.bills.json`` byte for byte.  If a change moves
these on purpose, regenerate the corpus with
``PYTHONPATH=src python tests/data/golden/regenerate.py`` and commit
the diff.
"""

import pytest

from repro.datacenter.journal.reader import read_journal
from repro.datacenter.journal.replay import replay
from repro.experiments.datacenter import format_replay_bills
from tests.data.golden.regenerate import (
    GOLDEN_NAMES,
    bills_path,
    journal_path,
)


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_corpus_is_complete(name):
    assert journal_path(name).is_file()
    assert bills_path(name).is_file()


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_batched_replay_matches_committed_bills(name):
    """replay(step_mode="batched") reproduces the committed bytes."""
    result = replay(str(journal_path(name)), step_mode="batched")
    expected = bills_path(name).read_text()
    assert format_replay_bills(result) == expected


def test_corpus_covers_migration_and_faults():
    """The corpus guarantees a warm migration and faulted runs exist."""
    migrating = read_journal(str(journal_path("migrating")))
    assert migrating.result["migrations"]
    chaos = read_journal(str(journal_path("chaos")))
    assert chaos.result["failures"]
    grayfail = read_journal(str(journal_path("grayfail")))
    assert grayfail.result["faults"]
