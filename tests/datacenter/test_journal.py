"""Journal subsystem tests: codec round-trips, byte-exact replay,
crash-at-every-barrier resume, chaos conservation, and the CLI paths.

The tiny scenarios here run through the *registered* scenario builder
(``datacenter-experiment``), exactly as a journal header references it,
so every test doubles as a check that a journal really is a sufficient
statistic for its run (ARCHITECTURE.md invariant 7).
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datacenter import fork_available
from repro.datacenter.billing import TenantBill
from repro.datacenter.controlplane import (
    FailMachine,
    Migrate,
    SetBudget,
    SetCaps,
)
from repro.datacenter.journal import (
    JournalDecodeError,
    JournalError,
    JournalWriter,
    canonical_json,
    decode_action,
    decode_bill,
    encode_action,
    encode_bill,
    journaled_run,
    read_journal,
    replay,
    resume,
)
from repro.experiments.__main__ import main
from repro.experiments.datacenter import (
    TenantScenario,
    build_engine_from_config,
    scenario_config,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded backend requires fork start method"
)

HORIZON = 24.0


def tiny_tenants(machines):
    """Three mixed tenants spread over the first ``machines`` machines."""
    return (
        TenantScenario("alpha", 0, "steady", rate=1.2, seed=1),
        TenantScenario(
            "beta", 1 % machines, "steady", rate=0.8, qos_cap=0.0, seed=2
        ),
        TenantScenario("gamma", 2 % machines, "burst", rate=1.5, seed=3),
    )


def make_config(machines=2, budget=420.0, policy="sla-aware", chaos=None):
    return scenario_config(
        tiny_tenants(machines),
        machines,
        HORIZON,
        budget,
        policy,
        control_period=6.0,
        chaos=chaos,
    )


def record_run(path, config, backend="serial", workers=None):
    """Record one journaled run of ``config``; return its live result."""
    writer = JournalWriter(
        str(path),
        {
            "scenario": {
                "builder": "datacenter-experiment",
                "module": "repro.experiments.datacenter",
                "config": config,
            },
            "backend": backend,
            "workers": workers,
            "initial_budget_watts": config["budget_watts"],
        },
    )
    engine = build_engine_from_config(
        config, backend=backend, workers=workers, journal=writer
    )
    with writer:
        return journaled_run(engine, writer)


finite = st.floats(allow_nan=False, allow_infinity=False)

actions = st.one_of(
    st.builds(
        lambda caps: SetCaps(caps=tuple(caps)),
        st.lists(finite, min_size=1, max_size=6),
    ),
    st.builds(SetBudget, budget_watts=finite),
    st.builds(
        Migrate,
        tenant=st.text(max_size=12),
        dest_machine_index=st.integers(min_value=0, max_value=64),
        cost_seconds=finite,
        warm=st.booleans(),
    ),
    st.builds(FailMachine, machine_index=st.integers(min_value=0, max_value=64)),
)

bills = st.builds(
    TenantBill,
    tenant=st.text(max_size=12),
    machine_index=st.integers(min_value=0, max_value=64),
    offered=st.integers(min_value=0, max_value=10**6),
    admitted=st.integers(min_value=0, max_value=10**6),
    rejected=st.integers(min_value=0, max_value=10**6),
    completed=st.integers(min_value=0, max_value=10**6),
    busy_seconds=finite,
    energy_joules=finite,
    qos_loss_seconds=finite,
    mean_qos_loss=finite,
    attainment=finite,
    sla_met=st.booleans(),
)


class TestCodecRoundTrip:
    """encode -> decode -> encode is byte-stable for every finite value."""

    @given(actions)
    def test_action_round_trip_is_byte_stable(self, action):
        first = encode_action(action)
        again = encode_action(decode_action(first))
        assert canonical_json(again) == canonical_json(first)

    @given(actions)
    def test_action_round_trip_preserves_equality(self, action):
        assert decode_action(encode_action(action)) == action

    @given(bills)
    def test_bill_round_trip_is_exact(self, bill):
        assert decode_bill(encode_bill(bill)) == bill
        first = encode_bill(bill)
        again = encode_bill(decode_bill(first))
        assert canonical_json(again) == canonical_json(first)

    def test_decode_action_errors_name_the_problem(self):
        with pytest.raises(JournalDecodeError, match="unknown action type"):
            decode_action({"type": "reboot"}, where="barrier 3 action 1")
        with pytest.raises(JournalDecodeError, match="barrier 3"):
            decode_action({"caps": [1.0]}, where="barrier 3 action 1")


class TestReplayParity:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("journal") / "run.ndjson"
        result = record_run(path, make_config())
        return path, result

    def test_journal_is_complete_and_typed(self, recorded):
        path, _ = recorded
        journal = read_journal(str(path))
        assert journal.complete
        assert journal.header["scenario"]["builder"] == "datacenter-experiment"
        assert len(journal.barriers) >= 4
        indices = [barrier.index for barrier in journal.barriers]
        assert indices == sorted(indices)

    def test_serial_replay_reproduces_the_run(self, recorded):
        path, live = recorded
        replayed = replay(str(path))
        assert replayed.bills == live.bills
        assert replayed.tenant_reports == live.tenant_reports
        assert replayed.total_energy_joules == live.total_energy_joules

    @needs_fork
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_replay_reproduces_the_run(self, recorded, workers):
        path, live = recorded
        replayed = replay(str(path), backend="sharded", workers=workers)
        assert replayed.bills == live.bills
        assert replayed.tenant_reports == live.tenant_reports

    @needs_fork
    def test_sharded_recording_differs_only_in_header(
        self, recorded, tmp_path
    ):
        path, _ = recorded
        sharded_path = tmp_path / "sharded.ndjson"
        record_run(sharded_path, make_config(), backend="sharded", workers=2)
        serial_lines = path.read_text().splitlines()
        sharded_lines = sharded_path.read_text().splitlines()
        assert len(serial_lines) == len(sharded_lines)
        # Line 1 carries backend/workers provenance; all barrier and
        # result records must be byte-identical across backends.
        assert serial_lines[1:] == sharded_lines[1:]


class TestChaosAndResume:
    @pytest.fixture(scope="class")
    def chaos_config(self):
        return make_config(
            machines=3, budget=640.0, chaos={"kills": 1, "seed": 7}
        )

    @pytest.fixture(scope="class")
    def chaos_recorded(self, tmp_path_factory, chaos_config):
        path = tmp_path_factory.mktemp("chaos") / "chaos.ndjson"
        result = record_run(path, chaos_config)
        return path, result

    def test_failure_recorded_and_billing_conserved(self, chaos_recorded):
        path, result = chaos_recorded
        assert len(result.failures) == 1
        assert result.energy_conservation_rel_error() <= 1e-12
        journal = read_journal(str(path))
        journaled_failures = [
            failure
            for barrier in journal.barriers
            for failure in barrier.failures
        ]
        assert journaled_failures == result.failures

    def test_chaos_replay_reproduces_the_failure(self, chaos_recorded):
        path, live = chaos_recorded
        replayed = replay(str(path))
        assert replayed.failures == live.failures
        assert replayed.bills == live.bills

    @needs_fork
    def test_sharded_chaos_matches_serial(self, chaos_recorded, chaos_config):
        _, serial = chaos_recorded
        engine = build_engine_from_config(
            chaos_config, backend="sharded", workers=2
        )
        sharded = engine.run()
        assert sharded.failures == serial.failures
        assert sharded.bills == serial.bills
        assert sharded.tenant_reports == serial.tenant_reports

    def test_crash_at_every_barrier_resumes_identically(
        self, chaos_recorded, tmp_path
    ):
        """Truncate the journal after each barrier (with a torn final
        write) and resume: bills must equal the uncrashed run's and
        conservation must hold."""
        path, reference = chaos_recorded
        lines = path.read_text().splitlines()
        barrier_lines = [
            i
            for i, line in enumerate(lines)
            if json.loads(line)["kind"] == "barrier"
        ]
        assert barrier_lines, "recorded journal has no barrier records"
        for crash_at, keep in enumerate(barrier_lines):
            crashed = tmp_path / f"crash-{crash_at}.ndjson"
            crashed.write_text(
                "\n".join(lines[: keep + 1] + ['{"kind":"barr']) + "\n"
            )
            resumed = resume(str(crashed))
            assert resumed.bills == reference.bills
            assert resumed.failures == reference.failures
            assert resumed.energy_conservation_rel_error() <= 1e-12

    def test_resume_can_record_a_fresh_replayable_journal(
        self, chaos_recorded, tmp_path
    ):
        path, reference = chaos_recorded
        lines = path.read_text().splitlines()
        first_barrier = next(
            i
            for i, line in enumerate(lines)
            if json.loads(line)["kind"] == "barrier"
        )
        crashed = tmp_path / "crashed.ndjson"
        crashed.write_text("\n".join(lines[: first_barrier + 1]) + "\n")
        fresh = tmp_path / "resumed.ndjson"
        resumed = resume(str(crashed), journal_path=str(fresh))
        assert resumed.bills == reference.bills
        replayed = replay(str(fresh))
        assert replayed.bills == reference.bills


class TestReaderErrors:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("reader") / "run.ndjson"
        result = record_run(path, make_config())
        return path, result

    def test_torn_final_line_is_tolerated(self, recorded, tmp_path):
        path, _ = recorded
        torn = tmp_path / "torn.ndjson"
        torn.write_text(path.read_text() + '{"kind":"barr')
        journal = read_journal(str(torn))
        assert journal.complete

    def test_mid_journal_corruption_names_path_and_line(
        self, recorded, tmp_path
    ):
        path, _ = recorded
        lines = path.read_text().splitlines()
        lines[1] = '{"kind": "barrier", not json'
        corrupt = tmp_path / "corrupt.ndjson"
        corrupt.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalDecodeError) as excinfo:
            read_journal(str(corrupt))
        message = str(excinfo.value)
        assert "corrupt.ndjson" in message
        assert "2" in message

    def test_replay_refuses_an_incomplete_journal(self, recorded, tmp_path):
        path, _ = recorded
        lines = [
            line
            for line in path.read_text().splitlines()
            if json.loads(line)["kind"] != "result"
        ]
        partial = tmp_path / "partial.ndjson"
        partial.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="resume"):
            replay(str(partial))


class TestJournalCli:
    def test_record_then_replay_round_trips(self, tmp_path, capsys):
        journal = tmp_path / "run.ndjson"
        assert (
            main(["datacenter", "--scale", "tiny", "--journal", str(journal)])
            == 0
        )
        capsys.readouterr()
        assert main(["replay", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Journal replayed" in out

    def test_unwritable_journal_path_exits_2(self, capsys):
        code = main(
            [
                "datacenter",
                "--scale",
                "tiny",
                "--journal",
                "/nonexistent-dir/run.ndjson",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err

    def test_non_journal_file_is_refused(self, tmp_path, capsys):
        existing = tmp_path / "notes.txt"
        existing.write_text("not a journal\n")
        code = main(
            ["datacenter", "--scale", "tiny", "--journal", str(existing)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "not a run journal" in err

    def test_schema_mismatch_is_refused(self, tmp_path, capsys):
        stale = tmp_path / "old.ndjson"
        stale.write_text('{"kind":"header","journal_schema":99}\n')
        code = main(["datacenter", "--scale", "tiny", "--journal", str(stale)])
        assert code == 2
        err = capsys.readouterr().err
        assert "schema version 99" in err

    def test_replay_of_missing_journal_exits_2(self, tmp_path, capsys):
        code = main(
            ["replay", "--journal", str(tmp_path / "missing.ndjson")]
        )
        assert code == 2
        assert "cannot read journal" in capsys.readouterr().err
