"""Tests for the open-loop traffic generators."""

import pytest

from repro.cluster.workload import LoadProfile
from repro.datacenter.traffic import (
    TrafficError,
    TrafficTrace,
    burst_trace,
    diurnal_trace,
    poisson_trace,
    profile_trace,
)


class TestTrafficTrace:
    def test_rejects_unsorted_arrivals(self):
        with pytest.raises(TrafficError):
            TrafficTrace(name="bad", arrivals=(2.0, 1.0), duration=10.0)

    def test_rejects_arrivals_outside_horizon(self):
        with pytest.raises(TrafficError):
            TrafficTrace(name="bad", arrivals=(5.0, 11.0), duration=10.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(TrafficError):
            TrafficTrace(name="bad", arrivals=(), duration=0.0)

    def test_mean_rate(self):
        trace = TrafficTrace(name="t", arrivals=(1.0, 2.0, 3.0, 4.0), duration=8.0)
        assert trace.mean_rate() == pytest.approx(0.5)
        assert trace.count == 4


class TestPoisson:
    def test_rate_is_close_to_requested(self):
        trace = poisson_trace(rate=5.0, duration=400.0, seed=1)
        assert trace.mean_rate() == pytest.approx(5.0, rel=0.15)

    def test_deterministic_per_seed(self):
        assert poisson_trace(2.0, 50.0, seed=3) == poisson_trace(2.0, 50.0, seed=3)
        assert poisson_trace(2.0, 50.0, seed=3) != poisson_trace(2.0, 50.0, seed=4)


class TestDiurnal:
    def test_midday_beats_night(self):
        # Starts at the trough; intensity peaks mid-period, so the middle
        # half of the cycle must out-arrive the outer quarters.
        trace = diurnal_trace(
            peak_rate=8.0, duration=200.0, period=200.0, seed=2
        )
        busy = sum(1 for t in trace.arrivals if 50.0 <= t < 150.0)
        quiet = trace.count - busy
        assert busy > 1.5 * quiet

    def test_never_exceeds_peak_on_average(self):
        trace = diurnal_trace(peak_rate=4.0, duration=300.0, seed=5)
        assert trace.mean_rate() < 4.0

    def test_invalid_trough_rejected(self):
        with pytest.raises(TrafficError):
            diurnal_trace(4.0, 100.0, trough_fraction=1.5)


class TestBurst:
    def test_bursts_concentrate_arrivals(self):
        trace = burst_trace(
            base_rate=0.2,
            burst_rate=10.0,
            duration=400.0,
            burst_every=40.0,
            burst_length=8.0,
            seed=7,
        )
        in_burst = sum(1 for t in trace.arrivals if (t % 40.0) < 8.0)
        # 20% of the time carries the overwhelming majority of requests.
        assert in_burst / trace.count > 0.8

    def test_burst_rate_must_dominate(self):
        with pytest.raises(TrafficError):
            burst_trace(base_rate=5.0, burst_rate=1.0, duration=100.0)


class TestProfile:
    def test_follows_epoch_utilizations(self):
        profile = LoadProfile(utilizations=(0.1, 0.9), epoch_seconds=200.0)
        trace = profile_trace(profile, peak_rate=5.0, seed=9)
        first = sum(1 for t in trace.arrivals if t < 200.0)
        second = trace.count - first
        assert trace.duration == pytest.approx(400.0)
        assert first == pytest.approx(0.1 * 5.0 * 200.0, rel=0.4)
        assert second == pytest.approx(0.9 * 5.0 * 200.0, rel=0.2)

    def test_zero_peak_rejected(self):
        profile = LoadProfile(utilizations=(0.5,))
        with pytest.raises(TrafficError):
            profile_trace(profile, peak_rate=0.0)
