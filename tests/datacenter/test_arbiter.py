"""Tests for the hierarchical power arbiter."""

import pytest

from repro.datacenter.arbiter import (
    ArbiterError,
    ArbiterPolicy,
    PowerArbiter,
    frequency_for_cap,
    machine_cap_ceiling,
    machine_cap_floor,
)
from repro.experiments.common import experiment_machine


@pytest.fixture()
def machines():
    return [experiment_machine(), experiment_machine()]


class TestCapMapping:
    def test_floor_and_ceiling_bracket_pstates(self, machines):
        machine = machines[0]
        floor = machine_cap_floor(machine)
        ceiling = machine_cap_ceiling(machine)
        assert floor < ceiling
        assert ceiling == pytest.approx(220.0)  # paper's full-load draw

    def test_generous_cap_selects_fastest(self, machines):
        assert frequency_for_cap(machines[0], 500.0) == pytest.approx(2.4)

    def test_tight_cap_selects_slower_state(self, machines):
        machine = machines[0]
        freq = frequency_for_cap(machine, 200.0)
        assert freq < 2.4
        machine.set_frequency(freq)
        assert machine.current_power(1.0) <= 200.0

    def test_impossible_cap_falls_back_to_slowest(self, machines):
        assert frequency_for_cap(machines[0], 10.0) == pytest.approx(1.6)

    def test_cap_is_enforced_at_full_load(self, machines):
        """Any cap >= the floor holds even if the machine saturates."""
        machine = machines[0]
        for cap in (185.0, 195.0, 205.0, 215.0):
            machine.set_frequency(frequency_for_cap(machine, cap))
            assert machine.current_power(1.0) <= cap + 1e-9


class TestAllocation:
    def test_budget_below_pool_floor_rejected(self, machines):
        with pytest.raises(ArbiterError):
            PowerArbiter(300.0, machines)

    def test_static_split_is_equal(self, machines):
        arbiter = PowerArbiter(420.0, machines, policy=ArbiterPolicy.STATIC_EQUAL)
        caps = arbiter.allocate([5.0, 0.0])  # scores ignored
        assert caps[0] == pytest.approx(caps[1])
        assert sum(caps) == pytest.approx(420.0)

    def test_sla_aware_shifts_watts_to_violators(self, machines):
        arbiter = PowerArbiter(420.0, machines, policy=ArbiterPolicy.SLA_AWARE)
        caps = arbiter.allocate([0.0, 2.0])
        assert caps[1] > caps[0]
        assert sum(caps) <= 420.0 + 1e-9

    def test_zero_scores_degenerate_to_equal(self, machines):
        arbiter = PowerArbiter(400.0, machines, policy=ArbiterPolicy.SLA_AWARE)
        caps = arbiter.allocate([0.0, 0.0])
        assert caps[0] == pytest.approx(caps[1])

    def test_ceiling_excess_cascades(self, machines):
        """A saturated winner's surplus flows to the other machines."""
        arbiter = PowerArbiter(430.0, machines, policy=ArbiterPolicy.SLA_AWARE)
        caps = arbiter.allocate([0.0, 100.0])
        assert caps[1] == pytest.approx(machine_cap_ceiling(machines[1]))
        # Everything left over lands on machine 0, not thrown away.
        assert caps[0] == pytest.approx(430.0 - caps[1])

    def test_every_machine_keeps_its_floor(self, machines):
        arbiter = PowerArbiter(420.0, machines, policy=ArbiterPolicy.SLA_AWARE)
        caps = arbiter.allocate([0.0, 1000.0])
        for cap, floor in zip(caps, arbiter.floors):
            assert cap >= floor - 1e-9

    def test_all_zero_weights_leave_floors(self, machines):
        """No bids: the surplus goes undistributed instead of dividing
        by a zero total weight."""
        from repro.datacenter.arbiter import water_fill

        caps = water_fill([0.0, 0.0], [100.0, 100.0], [200.0, 200.0], 250.0)
        assert caps == [100.0, 100.0]

    def test_score_count_must_match(self, machines):
        arbiter = PowerArbiter(420.0, machines)
        with pytest.raises(ArbiterError):
            arbiter.allocate([1.0])
        with pytest.raises(ArbiterError):
            arbiter.allocate([-1.0, 0.0])

    def test_apply_sets_frequencies(self, machines):
        arbiter = PowerArbiter(420.0, machines, policy=ArbiterPolicy.SLA_AWARE)
        caps = arbiter.apply([0.0, 5.0])
        for machine, cap in zip(machines, caps):
            assert machine.current_power(1.0) <= cap + 1e-9
        # The violator's machine is clocked at least as fast.
        assert (
            machines[1].processor.frequency_ghz
            >= machines[0].processor.frequency_ghz
        )
