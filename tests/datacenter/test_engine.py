"""Integration tests for the event-driven datacenter engine."""

import pytest

from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter import (
    ArbiterError,
    ArbiterPolicy,
    DatacenterEngine,
    EngineError,
    InstanceBinding,
    LatencySLA,
    PowerArbiter,
    ServiceApp,
    TenantSpec,
    burst_trace,
    poisson_trace,
    request_stream,
    service_training_jobs,
)
from repro.experiments.common import experiment_machine


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ServiceApp, service_training_jobs(), trace_iterations=2)


def make_binding(
    system,
    machine,
    machine_index,
    name,
    trace,
    qos_cap=None,
    sla=None,
    max_queue_depth=32,
    seed=0,
):
    table = system.table if qos_cap is None else system.table.with_qos_cap(qos_cap)
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machine
    )
    runtime = PowerDialRuntime(
        app=ServiceApp(), table=table, machine=machine, target_rate=target
    )
    spec = TenantSpec(
        name=name,
        trace=trace,
        sla=sla or LatencySLA(latency_bound=1.0, attainment_target=0.9),
        job_factory=request_stream(seed=seed),
        qos_cap=qos_cap,
        max_queue_depth=max_queue_depth,
    )
    return InstanceBinding(
        tenant=spec, runtime=runtime, machine_index=machine_index
    )


class TestAccounting:
    def test_every_admitted_request_completes(self, system):
        machines = [experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(1.5, 30.0, seed=1)
            ),
            make_binding(
                system, machines[0], 0, "b", poisson_trace(1.0, 30.0, seed=2), seed=1
            ),
        ]
        result = DatacenterEngine(machines, bindings).run()
        for binding, report in zip(bindings, result.tenant_reports):
            assert report.offered == binding.tenant.trace.count
            assert report.completed == report.admitted
            assert report.offered == report.admitted + report.rejected

    def test_latencies_are_positive_and_causal(self, system):
        machines = [experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(2.0, 30.0, seed=3)
            )
        ]
        result = DatacenterEngine(machines, bindings).run()
        for record in bindings[0].stats.completions:
            assert record.completion > record.arrival
        # Requests complete no earlier than the virtual service time.
        report = result.tenant_reports[0]
        assert report.mean_latency > 0.1  # ~5 items at ~42 ms each

    def test_makespan_covers_horizon(self, system):
        machines = [experiment_machine(), experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(1.0, 25.0, seed=4)
            ),
            make_binding(
                system, machines[1], 1, "b", poisson_trace(1.0, 25.0, seed=5), seed=1
            ),
        ]
        result = DatacenterEngine(machines, bindings).run()
        assert result.makespan >= 25.0 - 1.0
        assert result.total_energy_joules > 0
        assert all(power > 0 for power in result.machine_mean_power)

    def test_engine_is_single_use(self, system):
        machines = [experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(1.0, 5.0, seed=6)
            )
        ]
        engine = DatacenterEngine(machines, bindings)
        engine.run()
        with pytest.raises(EngineError):
            engine.run()


class TestAdmissionControl:
    def test_overload_sheds_requests(self, system):
        machines = [experiment_machine()]
        # Offered far beyond one machine's capacity, tiny queue.
        trace = burst_trace(2.0, 30.0, 30.0, burst_every=10.0, burst_length=5.0, seed=7)
        bindings = [
            make_binding(
                system, machines[0], 0, "hot", trace, max_queue_depth=4
            )
        ]
        result = DatacenterEngine(machines, bindings).run()
        report = result.tenant_reports[0]
        assert report.rejected > 0
        assert report.completed == report.admitted
        # The queue bound also bounds latency: depth * service time-ish.
        assert report.p95_latency < 4.0


class TestContention:
    def test_co_tenants_trigger_knob_speedup(self, system):
        """Saturating co-resident tenants must engage dynamic knobs."""
        machines = [experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(3.0, 40.0, seed=8)
            ),
            make_binding(
                system, machines[0], 0, "b", poisson_trace(3.0, 40.0, seed=9), seed=1
            ),
        ]
        result = DatacenterEngine(machines, bindings).run()
        max_gain = max(
            sample.knob_gain
            for run in result.run_results.values()
            for sample in run.samples
        )
        assert max_gain > 1.0

    def test_solo_light_tenant_stays_at_baseline(self, system):
        machines = [experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "solo", poisson_trace(0.5, 40.0, seed=10)
            )
        ]
        result = DatacenterEngine(machines, bindings).run()
        run = result.run_results["solo"]
        # An unloaded, uncapped machine never needs knob gain.
        assert all(s.speedup == pytest.approx(1.0) for s in run.settings_used)


class TestArbitratedRuns:
    def test_budget_respected(self, system):
        machines = [experiment_machine(), experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(2.5, 40.0, seed=11)
            ),
            make_binding(
                system, machines[1], 1, "b", poisson_trace(2.5, 40.0, seed=12), seed=1
            ),
        ]
        arbiter = PowerArbiter(400.0, machines, policy=ArbiterPolicy.SLA_AWARE)
        result = DatacenterEngine(machines, bindings, policy=arbiter).run()
        assert result.budget_watts == pytest.approx(400.0)
        assert result.total_mean_power <= 400.0 + 1e-6
        for (_, caps) in result.cap_history:
            assert sum(caps) <= 400.0 + 1e-6

    def test_caps_slow_the_machines(self, system):
        machines = [experiment_machine(), experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(1.0, 20.0, seed=13)
            ),
            make_binding(
                system, machines[1], 1, "b", poisson_trace(1.0, 20.0, seed=14), seed=1
            ),
        ]
        arbiter = PowerArbiter(380.0, machines, policy=ArbiterPolicy.STATIC_EQUAL)
        DatacenterEngine(machines, bindings, policy=arbiter).run()
        # 380/2 = 190 W per machine: must run below the top frequency.
        for machine in machines:
            assert machine.processor.frequency_ghz < 2.4


class TestValidation:
    def test_runtime_machine_mismatch_rejected(self, system):
        machines = [experiment_machine(), experiment_machine()]
        binding = make_binding(
            system, machines[1], 0, "a", poisson_trace(1.0, 5.0, seed=15)
        )
        with pytest.raises(EngineError):
            DatacenterEngine(machines, [binding])

    def test_duplicate_tenant_names_rejected(self, system):
        machines = [experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "dup", poisson_trace(1.0, 5.0, seed=16)
            ),
            make_binding(
                system, machines[0], 0, "dup", poisson_trace(1.0, 5.0, seed=17), seed=1
            ),
        ]
        with pytest.raises(EngineError):
            DatacenterEngine(machines, bindings)

    def test_arbiter_pool_size_mismatch_rejected(self, system):
        """A policy sized for a different pool fails at the first barrier."""
        machines = [experiment_machine()]
        other = [experiment_machine(), experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(1.0, 5.0, seed=18)
            )
        ]
        arbiter = PowerArbiter(400.0, other)
        with pytest.raises(ArbiterError):
            DatacenterEngine(machines, bindings, policy=arbiter).run()

    def test_non_policy_rejected(self, system):
        """Objects without the ControlPolicy surface are rejected early."""
        machines = [experiment_machine()]
        bindings = [
            make_binding(
                system, machines[0], 0, "a", poisson_trace(1.0, 5.0, seed=19)
            )
        ]
        with pytest.raises(EngineError):
            DatacenterEngine(machines, bindings, policy=object())
