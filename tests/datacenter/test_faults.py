"""Gray-failure injection tests (`repro.datacenter.faults`).

Pins the fault layer's contracts: a ``FaultPlan`` is a byte-stable pure
function of (seed, config); fault and retry journal records round-trip
through the codec byte-identically; every fault class preserves
serial-vs-sharded byte parity and billing conservation; faulted runs
replay and resume byte-exactly; and the degraded-mode policy holds,
quarantines, and reintegrates the way ``docs/ARCHITECTURE.md``
invariant 8 promises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import fork_available
from repro.datacenter.billing import CONSERVATION_TOLERANCE
from repro.datacenter.controlplane import (
    BudgetSchedule,
    ChaosPolicy,
    ClusterView,
    DegradedModePolicy,
    MachineView,
    Migrate,
    SetCaps,
    TenantView,
    chaos_kill_times,
)
from repro.datacenter.faults import (
    ACTUATOR_MODES,
    RETRY_OUTCOMES,
    SENSOR_MODES,
    ActuatorFault,
    FaultPlan,
    FaultPlanError,
    FaultRecord,
    KillFault,
    RetryRecord,
    SensorFault,
    StragglerFault,
    kill_schedule,
    load_fault_plan,
    parse_fault_plan,
)
from repro.datacenter.journal import (
    JournalWriter,
    canonical_json,
    decode_fault_record,
    decode_retry_record,
    encode_fault_record,
    encode_retry_record,
    journaled_run,
    read_journal,
    replay,
    result_payload,
    resume,
)
from repro.experiments.datacenter import (
    TenantScenario,
    build_engine_from_config,
    scenario_config,
)
from repro.heartbeats import (
    HEALTH_FRESH,
    HEALTH_STALE,
    HEALTH_UNRESPONSIVE,
    classify_heartbeat_age,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded backend requires fork start method"
)

HORIZON = 24.0


# ---------------------------------------------------------------------------
# FaultPlan purity and round-trips


seeds = st.integers(min_value=0, max_value=2**31 - 1)
counts = st.integers(min_value=0, max_value=3)


class TestFaultPlanPurity:
    @given(
        seed=seeds,
        kills=counts,
        dropouts=counts,
        noise=counts,
        drops=counts,
        stragglers=counts,
    )
    @settings(max_examples=30, deadline=None)
    def test_generate_is_pure_and_byte_stable(
        self, seed, kills, dropouts, noise, drops, stragglers
    ):
        kwargs = dict(
            horizon=60.0,
            machines=4,
            seed=seed,
            kills=kills,
            sensor_dropouts=dropouts,
            sensor_noise=noise,
            actuator_drops=drops,
            stragglers=stragglers,
        )
        first = FaultPlan.generate(**kwargs)
        second = FaultPlan.generate(**kwargs)
        assert first == second
        assert canonical_json(first.to_config()) == canonical_json(
            second.to_config()
        )

    @given(seed=seeds, kills=counts, dropouts=counts, drops=counts)
    @settings(max_examples=30, deadline=None)
    def test_config_round_trip_is_exact(self, seed, kills, dropouts, drops):
        plan = FaultPlan.generate(
            horizon=45.0,
            machines=3,
            seed=seed,
            kills=kills,
            sensor_dropouts=dropouts,
            actuator_drops=drops,
            unresponsive_after=4.0,
            reintegrate=5.0,
        )
        rebuilt = FaultPlan.from_config(plan.to_config())
        assert rebuilt == plan
        assert canonical_json(rebuilt.to_config()) == canonical_json(
            plan.to_config()
        )

    def test_kill_schedule_matches_chaos_kill_times(self):
        # The ChaosPolicy dedup contract: `--chaos N` and a kills-only
        # FaultPlan compute identical floats for the same seed.
        assert chaos_kill_times(40.0, 2, 7) == kill_schedule(40.0, 2, 7)
        plan = FaultPlan.generate(horizon=40.0, seed=7, kills=2)
        assert (
            tuple(k.time for k in plan.kills)
            == chaos_kill_times(40.0, 2, 7)
        )

    def test_barrier_times_cover_window_edges_and_kills(self):
        plan = FaultPlan(
            sensors=(SensorFault(0, 5.0, 11.0),),
            actuators=(ActuatorFault(1, 8.0, 14.0),),
            stragglers=(StragglerFault(0, 20.0, 26.0),),
            kills=(KillFault(17.0),),
        )
        times = plan.barrier_times(24.0)
        assert times == tuple(sorted(times))
        for expected in (5.0, 11.0, 8.0, 14.0, 17.0, 20.0):
            assert expected in times
        assert 26.0 not in times  # past the horizon

    def test_noise_unit_is_deterministic_and_bounded(self):
        plan = FaultPlan(seed=13)
        for machine in range(3):
            for now in (0.0, 7.25, 19.5):
                unit = plan.noise_unit(machine, now)
                assert unit == plan.noise_unit(machine, now)
                assert -1.0 <= unit <= 1.0


class TestFaultValidation:
    def test_backwards_window_rejected(self):
        with pytest.raises(FaultPlanError, match="field 'end'"):
            SensorFault(0, 10.0, 4.0)

    def test_bad_sensor_mode_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown sensor mode"):
            SensorFault(0, 1.0, 2.0, mode="jitter")

    def test_bad_actuator_fraction_rejected(self):
        with pytest.raises(FaultPlanError, match="field 'fraction'"):
            ActuatorFault(0, 1.0, 2.0, mode="partial", fraction=1.5)

    def test_negative_kill_time_rejected(self):
        with pytest.raises(FaultPlanError, match="field 'time'"):
            KillFault(-1.0)

    def test_bad_tuning_rejected(self):
        with pytest.raises(FaultPlanError, match="retry_base"):
            FaultPlan(retry_base_seconds=0.0)

    def test_kills_sorted_by_time(self):
        plan = FaultPlan(kills=(KillFault(9.0), KillFault(3.0)))
        assert [k.time for k in plan.kills] == [3.0, 9.0]


# ---------------------------------------------------------------------------
# Journal record codecs


finite_time = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
watt_values = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)

fault_records = st.builds(
    FaultRecord,
    time=finite_time,
    kind=st.sampled_from(("sensor", "actuator", "straggler", "recovered")),
    machine_index=st.integers(min_value=0, max_value=64),
    mode=st.one_of(st.none(), st.sampled_from(SENSOR_MODES + ACTUATOR_MODES)),
)

retry_records = st.builds(
    RetryRecord,
    time=finite_time,
    machine_index=st.integers(min_value=0, max_value=64),
    target_watts=watt_values,
    applied_watts=st.one_of(st.none(), watt_values),
    attempt=st.integers(min_value=1, max_value=12),
    outcome=st.sampled_from(RETRY_OUTCOMES),
)


class TestRecordCodecs:
    @given(record=fault_records)
    @settings(max_examples=50, deadline=None)
    def test_fault_record_round_trip_byte_identical(self, record):
        encoded = encode_fault_record(record)
        decoded = decode_fault_record(encoded, "test")
        assert decoded == record
        assert canonical_json(encode_fault_record(decoded)) == canonical_json(
            encoded
        )

    @given(record=retry_records)
    @settings(max_examples=50, deadline=None)
    def test_retry_record_round_trip_byte_identical(self, record):
        encoded = encode_retry_record(record)
        decoded = decode_retry_record(encoded, "test")
        assert decoded == record
        assert canonical_json(encode_retry_record(decoded)) == canonical_json(
            encoded
        )


# ---------------------------------------------------------------------------
# Fault-plan file parsing


class TestFaultPlanParsing:
    def test_full_plan_parses(self):
        plan = parse_fault_plan(
            "# comment\n"
            "config seed=3 unresponsive_after=4 reintegrate=5\n"
            "sensor machine=0 start=2 end=6 mode=noise amplitude=0.4\n"
            "actuator machine=1 start=3 end=9 mode=partial fraction=0.5\n"
            "straggler machine=0 start=10 end=14\n"
            "kill time=12 machine=1\n"
        )
        assert plan.seed == 3
        assert plan.unresponsive_after_seconds == 4.0
        assert plan.sensors[0].mode == "noise"
        assert plan.actuators[0].fraction == 0.5
        assert plan.kills[0].machine_index == 1

    def test_unknown_kind_names_line(self):
        with pytest.raises(FaultPlanError, match="line 2"):
            parse_fault_plan("kill time=3\nwobble machine=0\n")

    def test_bad_field_value_names_line_and_field(self):
        with pytest.raises(FaultPlanError, match="line 1.*'start'"):
            parse_fault_plan("sensor machine=0 start=soon end=4\n")

    def test_missing_field_named(self):
        with pytest.raises(FaultPlanError, match="line 1.*'end'"):
            parse_fault_plan("sensor machine=0 start=2\n")

    def test_unknown_field_named(self):
        with pytest.raises(FaultPlanError, match="line 1.*'colour'"):
            parse_fault_plan("kill time=3 colour=red\n")

    def test_validation_error_names_line(self):
        with pytest.raises(FaultPlanError, match="line 1.*'end'"):
            parse_fault_plan("sensor machine=0 start=9 end=2\n")

    def test_load_names_path(self, tmp_path):
        path = tmp_path / "bad.faults"
        path.write_text("kill when=3\n")
        with pytest.raises(FaultPlanError, match="bad.faults.*line 1"):
            load_fault_plan(str(path))

    def test_load_missing_file_names_path(self, tmp_path):
        missing = tmp_path / "nope.faults"
        with pytest.raises(FaultPlanError, match="nope.faults"):
            load_fault_plan(str(missing))

    def test_parse_is_deterministic(self):
        text = "sensor machine=0 start=1 end=5\nkill time=8\n"
        assert parse_fault_plan(text) == parse_fault_plan(text)


# ---------------------------------------------------------------------------
# Health classification and degraded-mode control


class TestHealthClassification:
    def test_thresholds(self):
        assert classify_heartbeat_age(0.0, 6.0, 12.0) == HEALTH_FRESH
        assert classify_heartbeat_age(6.0, 6.0, 12.0) == HEALTH_FRESH
        assert classify_heartbeat_age(6.1, 6.0, 12.0) == HEALTH_STALE
        assert classify_heartbeat_age(12.0, 6.0, 12.0) == HEALTH_STALE
        assert classify_heartbeat_age(12.1, 6.0, 12.0) == HEALTH_UNRESPONSIVE


def _view(health, caps=(150.0, 150.0, 150.0), budget=450.0):
    """A 3-machine view with the given per-machine health states."""
    machines = tuple(
        MachineView(
            index=i,
            cap_floor=100.0,
            cap_ceiling=200.0,
            cap_watts=caps[i],
            health=health[i],
        )
        for i in range(3)
    )
    tenants = tuple(
        TenantView(
            name=f"t{i}",
            machine_index=i,
            weight=1.0,
            sla_shortfall=0.0,
            pending_jobs=0,
            finished=False,
            energy_joules=0.0,
            busy_seconds=0.0,
            steps=0,
        )
        for i in range(3)
    )
    return ClusterView(
        time=10.0, budget_watts=budget, machines=machines, tenants=tenants
    )


class _FixedPolicy:
    """Inner stub returning a fixed action list."""

    def __init__(self, actions):
        self.actions = actions
        self.may_fail_machines = False

    def initial_budget_watts(self):
        return 450.0

    def barrier_times(self, horizon):
        return ()

    def decide(self, view):
        return list(self.actions)


class TestDegradedModePolicy:
    def test_all_fresh_passthrough(self):
        actions = [SetCaps(caps=(180.0, 120.0, 150.0))]
        policy = DegradedModePolicy(_FixedPolicy(actions))
        out = policy.decide(_view((HEALTH_FRESH,) * 3))
        assert list(out) == actions

    def test_stale_machine_holds_last_known_cap(self):
        policy = DegradedModePolicy(
            _FixedPolicy([SetCaps(caps=(180.0, 120.0, 150.0))])
        )
        view = _view((HEALTH_FRESH, HEALTH_STALE, HEALTH_FRESH))
        (action,) = policy.decide(view)
        assert isinstance(action, SetCaps)
        # The stale machine keeps its currently enforced 150 W, not the
        # commanded 120 W.
        assert action.caps[1] == 150.0

    def test_unresponsive_machine_quarantined_at_floor(self):
        policy = DegradedModePolicy(
            _FixedPolicy([SetCaps(caps=(150.0, 150.0, 150.0))])
        )
        view = _view((HEALTH_FRESH, HEALTH_UNRESPONSIVE, HEALTH_FRESH))
        (action,) = policy.decide(view)
        assert action.caps[1] == 100.0  # cap floor
        # Freed watts flow to the fresh machines (never above ceiling,
        # never above budget).
        assert action.caps[0] > 150.0 and action.caps[2] > 150.0
        assert all(cap <= 200.0 for cap in action.caps)
        assert sum(action.caps) <= 450.0 + 1e-9

    def test_migrations_to_unhealthy_machines_dropped(self):
        keep = Migrate(tenant="t0", dest_machine_index=2, cost_seconds=1.0)
        drop = Migrate(tenant="t2", dest_machine_index=1, cost_seconds=1.0)
        from_stale = Migrate(
            tenant="t1", dest_machine_index=0, cost_seconds=1.0
        )
        policy = DegradedModePolicy(_FixedPolicy([keep, drop, from_stale]))
        view = _view((HEALTH_FRESH, HEALTH_STALE, HEALTH_FRESH))
        out = policy.decide(view)
        assert keep in out
        assert drop not in out  # destination not fresh
        assert from_stale not in out  # source not fresh

    def test_degradation_is_deterministic(self):
        policy = DegradedModePolicy(
            _FixedPolicy([SetCaps(caps=(180.0, 120.0, 150.0))])
        )
        view = _view((HEALTH_FRESH, HEALTH_UNRESPONSIVE, HEALTH_STALE))
        first = policy.decide(view)
        second = policy.decide(view)
        assert list(first) == list(second)


# ---------------------------------------------------------------------------
# End-to-end: engine runs under every fault class


def tiny_tenants(machines):
    """Three mixed tenants spread over the first ``machines`` machines."""
    return (
        TenantScenario("alpha", 0, "steady", rate=1.2, seed=1),
        TenantScenario(
            "beta", 1 % machines, "steady", rate=0.8, qos_cap=0.0, seed=2
        ),
        TenantScenario("gamma", 2 % machines, "burst", rate=1.5, seed=3),
    )


FAULT_PLANS = {
    "sensor-dropout": FaultPlan(
        sensors=(SensorFault(0, 6.0, 14.0, mode="dropout"),),
        unresponsive_after_seconds=5.0,
        reintegrate_seconds=4.0,
    ),
    "sensor-delay": FaultPlan(
        sensors=(SensorFault(1, 6.0, 16.0, mode="delay", delay=4.0),),
    ),
    "sensor-noise": FaultPlan(
        sensors=(SensorFault(0, 4.0, 18.0, mode="noise", amplitude=0.5),),
        seed=5,
    ),
    "actuator-drop": FaultPlan(
        actuators=(ActuatorFault(1, 6.0, 23.0, mode="drop"),),
        retry_base_seconds=3.0,
        retry_cap_seconds=6.0,
        retry_deadline_seconds=9.0,
    ),
    "actuator-partial": FaultPlan(
        actuators=(
            ActuatorFault(0, 6.0, 20.0, mode="partial", fraction=0.4),
        ),
    ),
    "straggler": FaultPlan(stragglers=(StragglerFault(1, 8.0, 16.0),)),
    "kill": FaultPlan(kills=(KillFault(13.0,),), seed=2),
    "everything": FaultPlan(
        sensors=(
            SensorFault(0, 4.0, 12.0, mode="dropout"),
            SensorFault(1, 6.0, 14.0, mode="noise", amplitude=0.3),
        ),
        actuators=(ActuatorFault(1, 5.0, 17.0, mode="drop"),),
        stragglers=(StragglerFault(0, 15.0, 21.0),),
        kills=(KillFault(19.0),),
        seed=9,
        unresponsive_after_seconds=5.0,
        reintegrate_seconds=4.0,
        retry_base_seconds=3.0,
    ),
}


def faulted_config(plan, machines=3, policy="sla-aware", budget_trace=None):
    return scenario_config(
        tiny_tenants(machines),
        machines,
        HORIZON,
        630.0,
        policy,
        control_period=6.0,
        budget_trace=budget_trace,
        faults=plan,
    )


def run_config(config, backend="serial", workers=None):
    return build_engine_from_config(
        config, backend=backend, workers=workers
    ).run()


class TestFaultedRuns:
    @pytest.mark.parametrize("name", sorted(FAULT_PLANS))
    def test_conservation_holds(self, name):
        result = run_config(faulted_config(FAULT_PLANS[name]))
        assert (
            result.energy_conservation_rel_error() <= CONSERVATION_TOLERANCE
        )

    def test_faults_and_retries_are_journaled_in_result(self):
        result = run_config(faulted_config(FAULT_PLANS["everything"]))
        kinds = {fault.kind for fault in result.faults}
        assert {"sensor", "actuator", "straggler", "recovered"} <= kinds
        assert result.retries, "actuator drop must produce retry records"
        assert all(r.outcome in RETRY_OUTCOMES for r in result.retries)
        assert result.failures, "the kill must fail-stop a machine"

    def test_actuator_drop_produces_failed_then_abandoned(self):
        result = run_config(faulted_config(FAULT_PLANS["actuator-drop"]))
        outcomes = [r.outcome for r in result.retries]
        assert "failed" in outcomes
        # The drop window (6 -> 23 s) outlives the 9 s retry deadline,
        # so the attempt at t=18 gives up while the fault still bites.
        assert "abandoned" in outcomes

    def test_partial_mode_moves_part_way(self):
        # A mid-window budget drop forces the commanded caps to move,
        # so the partial actuator visibly lands short of its target.
        trace = BudgetSchedule(((10.0, 600.0), (20.0, 630.0)))
        result = run_config(
            faulted_config(
                FAULT_PLANS["actuator-partial"], budget_trace=trace
            )
        )
        partials = [r for r in result.retries if r.outcome == "partial"]
        assert partials
        for record in partials:
            assert record.applied_watts is not None
            assert record.applied_watts != record.target_watts

    def test_straggler_recovery_recorded(self):
        result = run_config(faulted_config(FAULT_PLANS["straggler"]))
        kinds = [fault.kind for fault in result.faults]
        assert "straggler" in kinds
        assert "recovered" in kinds

    def test_fault_plan_machine_out_of_range_rejected(self):
        plan = FaultPlan(sensors=(SensorFault(7, 1.0, 3.0),))
        with pytest.raises(Exception, match="machine"):
            run_config(faulted_config(plan, machines=2))


@needs_fork
class TestFaultedParity:
    @pytest.mark.parametrize("name", sorted(FAULT_PLANS))
    def test_sharded_2_matches_serial(self, name):
        config = faulted_config(FAULT_PLANS[name])
        serial = run_config(config)
        sharded = run_config(config, backend="sharded", workers=2)
        assert serial.bills == sharded.bills
        assert serial.cap_history == sharded.cap_history
        assert serial.faults == sharded.faults
        assert serial.retries == sharded.retries
        assert serial.idle_energy_joules == sharded.idle_energy_joules

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_counts_match_serial(self, workers):
        config = faulted_config(FAULT_PLANS["everything"])
        serial = run_config(config)
        sharded = run_config(config, backend="sharded", workers=workers)
        assert serial.bills == sharded.bills
        assert serial.faults == sharded.faults
        assert serial.retries == sharded.retries


# ---------------------------------------------------------------------------
# Journaled faulted runs: replay and resume stay byte-exact


def record_run(path, config, backend="serial", workers=None):
    writer = JournalWriter(
        str(path),
        {
            "scenario": {
                "builder": "datacenter-experiment",
                "module": "repro.experiments.datacenter",
                "config": config,
            },
            "backend": backend,
            "workers": workers,
            "initial_budget_watts": config["budget_watts"],
        },
    )
    engine = build_engine_from_config(
        config, backend=backend, workers=workers, journal=writer
    )
    with writer:
        return journaled_run(engine, writer)


class TestFaultedJournal:
    def test_barriers_carry_fault_and_retry_records(self, tmp_path):
        path = tmp_path / "gray.ndjson"
        record_run(path, faulted_config(FAULT_PLANS["everything"]))
        journal = read_journal(str(path))
        assert any(barrier.faults for barrier in journal.barriers)
        assert any(barrier.retries for barrier in journal.barriers)
        assert journal.result is not None
        assert journal.result["faults"]
        assert journal.result["retries"]

    def test_replay_is_byte_exact(self, tmp_path):
        path = tmp_path / "gray.ndjson"
        live = record_run(path, faulted_config(FAULT_PLANS["everything"]))
        replayed = replay(str(path))
        assert canonical_json(result_payload(replayed)) == canonical_json(
            result_payload(live)
        )

    @needs_fork
    def test_replay_parity_across_backends(self, tmp_path):
        path = tmp_path / "gray.ndjson"
        record_run(path, faulted_config(FAULT_PLANS["everything"]))
        serial = replay(str(path))
        sharded = replay(str(path), backend="sharded", workers=2)
        assert canonical_json(result_payload(serial)) == canonical_json(
            result_payload(sharded)
        )

    def test_resume_finishes_truncated_faulted_run(self, tmp_path):
        path = tmp_path / "gray.ndjson"
        live = record_run(path, faulted_config(FAULT_PLANS["everything"]))
        lines = path.read_text().splitlines()
        # Drop the result record and the last two barriers: a crash
        # two barriers before the end.
        path.write_text("\n".join(lines[:-3]) + "\n")
        resumed = resume(str(path))
        assert canonical_json(result_payload(resumed)) == canonical_json(
            result_payload(live)
        )
