"""Control-plane tests: central validation, budgets, migration, parity.

Four contracts:

* **Central validation** — whatever a policy emits, ``plan_actions``
  rejects caps outside ``[machine_cap_floor, machine_cap_ceiling]`` or
  over budget, naming the offending machine (property-style: random
  cap vectors are accepted iff they satisfy the invariant), and the
  engine enforces this on every policy at run time.
* **Budget traces** — the ``--budget-trace`` parser reports actionable
  errors (line numbers, non-monotonic timestamps, levels below the
  fleet floor).
* **Migration mechanics** — a cold migration preserves every admitted
  request, charges its cost to the mover's ledger, and keeps billing
  conservation exact.
* **Backend parity** — a scenario with a cross-machine migration *and*
  a mid-run budget shock yields byte-identical results (bills
  included) on serial and sharded (1/2/4 workers), and matching
  reports on eager.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime, RunResult
from repro.datacenter import (
    ArbiterError,
    BudgetSchedule,
    BudgetTraceError,
    ClusterView,
    ConsolidatingPolicy,
    ControlError,
    DatacenterEngine,
    InstanceBinding,
    LatencySLA,
    MachineView,
    MigratingPolicy,
    Migrate,
    PowerArbiter,
    ScheduledBudgetPolicy,
    ServiceApp,
    SetBudget,
    SetCaps,
    TenantSpec,
    TenantView,
    build_policy,
    diurnal_trace,
    fork_available,
    machine_cap_ceiling,
    machine_cap_floor,
    parse_budget_trace,
    poisson_trace,
    request_stream,
    service_training_jobs,
)
from repro.datacenter.controlplane import (
    load_budget_trace,
    machine_limits,
    merge_run_results,
    plan_actions,
)
from repro.experiments.common import experiment_machine
from repro.experiments.registry import built_service_system

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded backend requires fork start method"
)

FLOOR = 183.0
CEILING = 220.0
BUDGET = 600.0


def tenant_view(name, machine_index, shortfall=0.0, weight=1.0, **overrides):
    defaults = dict(
        name=name,
        machine_index=machine_index,
        weight=weight,
        sla_shortfall=shortfall,
        pending_jobs=0,
        finished=False,
        energy_joules=0.0,
        busy_seconds=0.0,
        steps=0,
    )
    defaults.update(overrides)
    return TenantView(**defaults)


def make_view(
    caps=None, budget=BUDGET, tenants=(), machines=3, time=10.0
):
    machine_views = tuple(
        MachineView(
            index=i,
            cap_floor=FLOOR,
            cap_ceiling=CEILING,
            cap_watts=None if caps is None else caps[i],
        )
        for i in range(machines)
    )
    return ClusterView(
        time=time, budget_watts=budget, machines=machine_views,
        tenants=tuple(tenants),
    )


class TestCentralCapValidation:
    """Any policy's SetCaps output is validated in one shared place."""

    FLOORS = [FLOOR] * 3
    CEILINGS = [CEILING] * 3

    def plan(self, caps, budget=BUDGET):
        return plan_actions(
            [SetCaps(tuple(caps))],
            make_view(budget=budget),
            self.FLOORS,
            self.CEILINGS,
            budget,
        )

    @settings(max_examples=200, deadline=None)
    @given(
        caps=st.lists(
            st.floats(min_value=100.0, max_value=400.0), min_size=3, max_size=3
        )
    )
    def test_caps_accepted_iff_within_range_and_budget(self, caps):
        """Property: validity is exactly range- and budget-compliance."""
        out_of_range = [
            i
            for i, cap in enumerate(caps)
            if cap < FLOOR - 1e-6 or cap > CEILING + 1e-6
        ]
        over_budget = sum(caps) > BUDGET + 1e-6
        if not out_of_range and not over_budget:
            plan = self.plan(caps)
            assert plan.caps == tuple(caps)
        else:
            with pytest.raises(ArbiterError) as excinfo:
                self.plan(caps)
            message = str(excinfo.value)
            if out_of_range:
                # Per-machine bounds are checked first, in index order,
                # and the error names the offending machine.
                assert f"machine {out_of_range[0]}" in message
            else:
                assert "budget" in message

    def test_cap_below_floor_names_machine(self):
        with pytest.raises(ArbiterError, match="machine 1.*below its floor"):
            self.plan([200.0, 150.0, 200.0])

    def test_cap_above_ceiling_names_machine(self):
        with pytest.raises(ArbiterError, match="machine 2.*above its ceiling"):
            self.plan([190.0, 190.0, 260.0])

    def test_wrong_cap_count_rejected(self):
        with pytest.raises(ArbiterError, match="expected 3 caps"):
            self.plan([200.0, 200.0])

    def test_budget_below_pool_floor_rejected(self):
        with pytest.raises(ArbiterError, match="below the pool's floor"):
            plan_actions(
                [SetBudget(100.0)],
                make_view(),
                self.FLOORS,
                self.CEILINGS,
                BUDGET,
            )

    def test_new_budget_governs_same_barrier_caps(self):
        """SetBudget + SetCaps in one decision validate against the
        *new* budget, not the stale one."""
        caps = [200.0, 200.0, 200.0]
        with pytest.raises(ArbiterError, match="exceeding"):
            plan_actions(
                [SetBudget(560.0), SetCaps(tuple(caps))],
                make_view(),
                self.FLOORS,
                self.CEILINGS,
                BUDGET,
            )

    def test_malformed_migrations_rejected(self):
        view = make_view(tenants=(tenant_view("t0", 0),))
        args = (self.FLOORS, self.CEILINGS, BUDGET)
        with pytest.raises(ControlError, match="unknown tenant"):
            plan_actions([Migrate("ghost", 1)], view, *args)
        with pytest.raises(ControlError, match="out of range"):
            plan_actions([Migrate("t0", 9)], view, *args)
        with pytest.raises(ControlError, match="already on machine"):
            plan_actions([Migrate("t0", 0)], view, *args)
        with pytest.raises(ControlError, match="migrated twice"):
            plan_actions(
                [Migrate("t0", 1), Migrate("t0", 2)], view, *args
            )

    def test_rogue_policy_is_stopped_by_the_engine(self):
        """The engine validates every policy's output at run time."""

        class RoguePolicy:
            def initial_budget_watts(self):
                return 2 * BUDGET

            def barrier_times(self, horizon):
                return ()

            def decide(self, view):
                return [SetCaps(tuple(500.0 for _ in view.machines))]

        system = built_service_system()
        machines = [experiment_machine(), experiment_machine()]
        target = measure_baseline_rate(
            ServiceApp, service_training_jobs()[0], machines[0]
        )
        spec = TenantSpec(
            name="t",
            trace=poisson_trace(1.0, 5.0, seed=1),
            sla=LatencySLA(1.0, 0.9),
            job_factory=request_stream(seed=1),
        )
        binding = InstanceBinding(
            tenant=spec,
            runtime=PowerDialRuntime(
                app=ServiceApp(),
                table=system.table,
                machine=machines[0],
                target_rate=target,
            ),
            machine_index=0,
        )
        engine = DatacenterEngine(machines, [binding], policy=RoguePolicy())
        with pytest.raises(ArbiterError, match="machine 0"):
            engine.run()


class TestBudgetTraceParsing:
    def test_parse_and_levels(self):
        schedule = parse_budget_trace(
            "# comment\n0 600\n30 510  # shed\n\n90 600\n"
        )
        assert schedule.entries == ((0.0, 600.0), (30.0, 510.0), (90.0, 600.0))
        assert schedule.times == (0.0, 30.0, 90.0)
        assert schedule.budget_at(-1.0, default=999.0) == 999.0
        assert schedule.budget_at(0.0) == 600.0
        assert schedule.budget_at(45.0) == 510.0
        assert schedule.budget_at(90.0) == 600.0

    def test_non_monotonic_timestamp_names_line(self):
        with pytest.raises(BudgetTraceError) as excinfo:
            parse_budget_trace("0 600\n30 510\n20 600\n")
        message = str(excinfo.value)
        assert "line 3" in message
        assert "does not increase" in message
        assert "monotonic" in message

    def test_non_numeric_entry_names_line(self):
        with pytest.raises(BudgetTraceError, match="line 2.*non-numeric"):
            parse_budget_trace("0 600\nten 510\n")

    def test_wrong_field_count_names_line(self):
        with pytest.raises(BudgetTraceError, match="line 1.*expected"):
            parse_budget_trace("0 600 700\n")

    def test_empty_trace_rejected(self):
        with pytest.raises(BudgetTraceError, match="empty"):
            parse_budget_trace("# nothing here\n")

    def test_level_below_fleet_floor_names_entry(self):
        schedule = parse_budget_trace("0 600\n30 100\n")
        with pytest.raises(BudgetTraceError) as excinfo:
            schedule.check_floor(366.2)
        message = str(excinfo.value)
        assert "entry 1" in message and "t=30" in message
        assert "below the fleet-wide cap floor" in message

    def test_build_policy_checks_schedule_floor(self):
        machines = [experiment_machine(), experiment_machine()]
        schedule = parse_budget_trace("10 100\n")
        with pytest.raises(BudgetTraceError, match="cap floor"):
            build_policy("sla-aware", 420.0, machines, schedule=schedule)

    def test_missing_file_reported(self, tmp_path):
        with pytest.raises(BudgetTraceError, match="cannot read"):
            load_budget_trace(tmp_path / "missing.trace")

    def test_file_errors_name_the_file(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("0 600\n0 500\n")
        with pytest.raises(BudgetTraceError, match="bad.trace.*line 2"):
            load_budget_trace(path)


class TestPolicies:
    def test_arbiter_decide_matches_allocate(self):
        """PowerArbiter.decide is a pure adapter over allocate()."""
        machines = [experiment_machine() for _ in range(3)]
        arbiter = PowerArbiter(580.0, machines, gain=8.0)
        tenants = (
            tenant_view("a", 0, shortfall=0.4, weight=3.0),
            tenant_view("b", 1, shortfall=0.1),
            tenant_view("c", 2),
        )
        floors, ceilings = machine_limits(machines)
        view = ClusterView(
            time=20.0,
            budget_watts=580.0,
            machines=tuple(
                MachineView(i, floors[i], ceilings[i], None) for i in range(3)
            ),
            tenants=tenants,
        )
        (action,) = arbiter.decide(view)
        assert isinstance(action, SetCaps)
        assert list(action.caps) == arbiter.allocate([1.2, 0.1, 0.0])

    def test_arbiter_decide_uses_view_budget(self):
        machines = [experiment_machine(), experiment_machine()]
        arbiter = PowerArbiter(440.0, machines)
        view = make_view(budget=380.0, machines=2)
        (action,) = arbiter.decide(view)
        assert sum(action.caps) <= 380.0 + 1e-6

    def test_scheduled_budget_emits_at_scheduled_times(self):
        seen = []

        class Recorder:
            def initial_budget_watts(self):
                return 600.0

            def barrier_times(self, horizon):
                return ()

            def decide(self, view):
                seen.append(view.budget_watts)
                return []

        schedule = BudgetSchedule(((10.0, 540.0), (20.0, 600.0)))
        policy = ScheduledBudgetPolicy(Recorder(), schedule)
        assert policy.initial_budget_watts() == 600.0
        assert set(schedule.times) <= set(policy.barrier_times(30.0))

        actions = policy.decide(make_view(budget=600.0, time=5.0))
        assert actions == []  # before the first entry: no change
        actions = policy.decide(make_view(budget=600.0, time=10.0))
        assert actions == [SetBudget(540.0)]
        actions = policy.decide(make_view(budget=540.0, time=15.0))
        assert actions == []  # level already in force
        # The inner policy always saw the budget in force at that time.
        assert seen == [600.0, 540.0, 540.0]

    def saturating_inner(self, caps):
        class Inner:
            def initial_budget_watts(self):
                return BUDGET

            def barrier_times(self, horizon):
                return ()

            def decide(self, view):
                return [SetCaps(tuple(caps))]

        return Inner()

    def test_migrating_policy_moves_worst_tenant_to_headroom(self):
        policy = MigratingPolicy(
            self.saturating_inner([CEILING, 200.0, 190.0]),
            cost_seconds=1.5,
        )
        view = make_view(
            tenants=(
                tenant_view("light", 0, shortfall=0.1),
                tenant_view("heavy", 0, shortfall=0.5),
                tenant_view("calm", 1),
            )
        )
        actions = policy.decide(view)
        migration = actions[-1]
        assert isinstance(migration, Migrate)
        assert migration.tenant == "heavy"
        assert migration.dest_machine_index == 2  # most cap headroom
        assert migration.cost_seconds == 1.5

    def test_migrating_policy_respects_cooldown(self):
        policy = MigratingPolicy(
            self.saturating_inner([CEILING, 190.0, 190.0]),
            cooldown_seconds=30.0,
        )
        tenants = (tenant_view("hot", 0, shortfall=0.5),)
        first = policy.decide(make_view(tenants=tenants, time=10.0))
        assert any(isinstance(a, Migrate) for a in first)
        # Within the cooldown the same tenant stays put...
        again = policy.decide(make_view(tenants=tenants, time=20.0))
        assert not any(isinstance(a, Migrate) for a in again)
        # ...and becomes movable once the cooldown expires.
        later = policy.decide(make_view(tenants=tenants, time=45.0))
        assert any(isinstance(a, Migrate) for a in later)

    def test_migrating_policy_quiet_when_unsaturated(self):
        policy = MigratingPolicy(self.saturating_inner([200.0, 200.0, 190.0]))
        view = make_view(tenants=(tenant_view("hot", 0, shortfall=0.5),))
        assert not any(isinstance(a, Migrate) for a in policy.decide(view))

    def test_build_policy_names(self):
        machines = [experiment_machine(), experiment_machine()]
        assert isinstance(build_policy("sla-aware", 420.0, machines), PowerArbiter)
        assert isinstance(
            build_policy("migrating", 420.0, machines), MigratingPolicy
        )
        assert isinstance(
            build_policy("consolidating", 420.0, machines),
            ConsolidatingPolicy,
        )
        schedule = BudgetSchedule(((10.0, 400.0),))
        wrapped = build_policy(
            "static-equal", 420.0, machines, schedule=schedule
        )
        assert isinstance(wrapped, ScheduledBudgetPolicy)
        with pytest.raises(ControlError, match="unknown policy"):
            build_policy("round-robin", 420.0, machines)

    def test_migrating_policy_warm_flag_propagates(self):
        policy = MigratingPolicy(
            self.saturating_inner([CEILING, 190.0, 190.0]), warm=True
        )
        view = make_view(tenants=(tenant_view("hot", 0, shortfall=0.5),))
        migration = policy.decide(view)[-1]
        assert isinstance(migration, Migrate)
        assert migration.warm


class TestConsolidatingPolicy:
    def inner(self, caps):
        class Inner:
            def initial_budget_watts(self):
                return BUDGET

            def barrier_times(self, horizon):
                return ()

            def decide(self, view):
                return [SetCaps(tuple(caps))]

        return Inner()

    def policy(self, caps=(200.0, 200.0, 200.0), **kwargs):
        return ConsolidatingPolicy(self.inner(list(caps)), **kwargs)

    def test_quiet_fleet_packs_lightest_machine_into_fullest(self):
        policy = self.policy(cost_seconds=1.0)
        view = make_view(
            tenants=(
                tenant_view("a", 0),
                tenant_view("b", 0),
                tenant_view("c", 2, pending_jobs=1),
            )
        )
        migration = policy.decide(view)[-1]
        assert isinstance(migration, Migrate)
        # Machine 2 (one resident) donates into machine 0 (two), warm.
        assert migration.tenant == "c"
        assert migration.dest_machine_index == 0
        assert migration.warm
        assert migration.cost_seconds == 1.0

    def test_parked_machines_capped_at_floor_watts_recycled(self):
        policy = self.policy(caps=(200.0, 195.0, 190.0))
        view = make_view(
            tenants=(tenant_view("a", 0), tenant_view("b", 0))
        )
        actions = policy.decide(view)
        assert len(actions) == 1  # everyone already packed: no move
        (caps_action,) = actions
        assert isinstance(caps_action, SetCaps)
        # Machines 1 and 2 are empty: parked at the floor; machine 0
        # absorbs the freed (195-183) + (190-183) = 19 W, within its
        # ceiling.
        assert caps_action.caps[1] == FLOOR
        assert caps_action.caps[2] == FLOOR
        assert caps_action.caps[0] == 219.0
        assert sum(caps_action.caps) <= sum((200.0, 195.0, 190.0)) + 1e-9

    def test_demand_spreads_back_onto_parked_machine(self):
        policy = self.policy()
        view = make_view(
            tenants=(
                tenant_view("calm", 0, shortfall=0.0),
                tenant_view("hot", 0, shortfall=0.4, weight=2.0),
            )
        )
        migration = policy.decide(view)[-1]
        assert isinstance(migration, Migrate)
        assert migration.tenant == "hot"
        assert migration.dest_machine_index == 1  # lowest-index parked
        assert migration.warm

    def test_spread_destination_is_not_parked_in_the_same_barrier(self):
        """Caps apply before migrations: the machine chosen to relieve
        load must not have its watts given away in the same plan."""
        policy = self.policy(caps=(200.0, 195.0, 190.0))
        view = make_view(
            tenants=(
                tenant_view("calm", 0, shortfall=0.0),
                tenant_view("hot", 0, shortfall=0.4, weight=2.0),
            )
        )
        caps_action, migration = policy.decide(view)
        assert isinstance(migration, Migrate)
        assert migration.dest_machine_index == 1
        # Machine 1 is about to receive the migrant: it keeps its inner
        # cap; only machine 2 (still empty after the move) is parked.
        assert caps_action.caps[1] == 195.0
        assert caps_action.caps[2] == FLOOR

    def test_lone_tenant_is_not_spread(self):
        """Relocating a machine's only tenant cannot relieve contention."""
        policy = self.policy()
        view = make_view(tenants=(tenant_view("hot", 0, shortfall=0.4),))
        assert not any(
            isinstance(a, Migrate) for a in policy.decide(view)
        )

    def test_shortfall_blocks_packing(self):
        policy = self.policy()
        view = make_view(
            tenants=(
                tenant_view("a", 0, shortfall=0.2),
                tenant_view("b", 2),
            )
        )
        assert not any(isinstance(a, Migrate) for a in policy.decide(view))

    def test_max_residents_bounds_packing(self):
        policy = self.policy(max_residents=2)
        view = make_view(
            tenants=(
                tenant_view("a", 0),
                tenant_view("b", 0),
                tenant_view("c", 2),
            )
        )
        assert not any(isinstance(a, Migrate) for a in policy.decide(view))

    def test_cooldown_blocks_immediate_re_move(self):
        policy = self.policy(cooldown_seconds=30.0)
        tenants = (tenant_view("a", 0), tenant_view("b", 2))
        first = policy.decide(make_view(tenants=tenants, time=10.0))
        assert any(isinstance(a, Migrate) for a in first)
        moved = next(a for a in first if isinstance(a, Migrate)).tenant
        again = policy.decide(make_view(tenants=tenants, time=20.0))
        assert not any(
            isinstance(a, Migrate) and a.tenant == moved for a in again
        )

    def test_hysteresis_band_required(self):
        with pytest.raises(ControlError, match="hysteresis"):
            self.policy(pack_shortfall=0.1, spread_shortfall=0.1)


class _FakeSample:
    def __init__(self, time):
        self.time = time


class _FakeSetting:
    def __init__(self, qos_loss):
        self.qos_loss = qos_loss


def fake_run(times, losses, energy=10.0, elapsed=1.0):
    return RunResult(
        samples=[_FakeSample(t) for t in times],
        outputs_by_job=[[0.0]],
        settings_used=[_FakeSetting(q) for q in losses],
        mean_power=100.0,
        energy_joules=energy,
        elapsed=elapsed,
    )


class TestMergeRunResults:
    def test_single_segment_is_identity(self):
        run = fake_run([0.0, 1.0], [0.0, 0.5])
        assert merge_run_results([run]) is run

    def test_segments_concatenate_and_sum(self):
        first = fake_run([0.0, 1.0], [0.0, 0.5], energy=10.0, elapsed=1.0)
        second = fake_run([5.0, 6.0], [0.1, 0.1], energy=4.0, elapsed=1.0)
        merged = merge_run_results([first, second])
        assert [s.time for s in merged.samples] == [0.0, 1.0, 5.0, 6.0]
        assert len(merged.settings_used) == 4
        assert merged.energy_joules == 14.0
        assert merged.elapsed == 2.0
        assert merged.mean_power is None  # undefined across machines

    def test_empty_segment_list_rejected(self):
        with pytest.raises(ControlError):
            merge_run_results([])


MIGRATION_HORIZON = 24.0


def build_migration_scenario(backend, workers=None):
    """3 machines; machine 0 overloaded by two heavy knob-poor tenants.

    The SLA-aware water-fill pins machine 0 at its cap ceiling while its
    tenants still violate, so the migrating policy moves the worst one;
    the budget schedule drops the fleet budget mid-run and restores it.
    """
    system = built_service_system()
    machines = [experiment_machine() for _ in range(3)]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )
    placements = [0, 0, 1, 2]
    rates = [2.8, 2.2, 0.6, 0.4]
    bindings = []
    for index, (machine_index, rate) in enumerate(zip(placements, rates)):
        qos_cap = 0.0 if index < 2 else None
        table = (
            system.table if qos_cap is None else system.table.with_qos_cap(qos_cap)
        )

        def make_runtime(machine, table=table):
            return PowerDialRuntime(
                app=ServiceApp(),
                table=table,
                machine=machine,
                target_rate=target,
            )

        spec = TenantSpec(
            name=f"t{index}",
            trace=poisson_trace(rate, MIGRATION_HORIZON, seed=70 + index),
            sla=LatencySLA(0.8, 0.95),
            job_factory=request_stream(seed=700 + index),
            qos_cap=qos_cap,
            weight=3.0 if index < 2 else 1.0,
            max_queue_depth=8,
        )
        bindings.append(
            InstanceBinding(
                tenant=spec,
                runtime=make_runtime(machines[machine_index]),
                machine_index=machine_index,
                runtime_factory=make_runtime,
            )
        )
    policy = ScheduledBudgetPolicy(
        MigratingPolicy(
            PowerArbiter(600.0, machines, gain=10.0),
            cost_seconds=1.5,
            cooldown_seconds=10.0,
        ),
        BudgetSchedule(((9.0, 570.0), (17.0, 600.0))),
    )
    return DatacenterEngine(
        machines,
        bindings,
        policy=policy,
        control_period=4.0,
        backend=backend,
        workers=workers,
    )


class TestMigrationAndShockSerial:
    @pytest.fixture(scope="class")
    def result(self):
        return build_migration_scenario("serial").run()

    def test_scenario_actually_migrates_and_shocks(self, result):
        assert result.migrations, "scenario must migrate an instance"
        move = result.migrations[0]
        assert move.source_machine_index == 0
        assert move.cost_seconds == 1.5
        assert result.budget_history == [
            (0.0, 600.0), (9.0, 570.0), (17.0, 600.0),
        ]

    def test_schedule_times_become_barriers(self, result):
        times = [t for t, _ in result.cap_history]
        assert 9.0 in times and 17.0 in times  # not multiples of 4.0

    def test_caps_respect_shocked_budget(self, result):
        for at, caps in result.cap_history:
            budget = 570.0 if 9.0 <= at < 17.0 else 600.0
            assert sum(caps) <= budget + 1e-6

    def test_no_request_lost_or_duplicated_across_migration(self, result):
        for report in result.tenant_reports:
            assert report.offered == report.admitted + report.rejected
            assert report.completed == report.admitted

    def test_conservation_survives_migration_and_shock(self, result):
        assert result.energy_conservation_rel_error() <= 1e-9

    def test_migration_cost_charged_to_mover(self, result):
        mover = result.migrations[0].tenant
        bill = result.bill_for(mover)
        # The mover's final placement is the migration destination.
        assert bill.machine_index == result.migrations[0].dest_machine_index
        assert bill.busy_seconds >= 1.5

    def test_merged_run_result_spans_both_hosts(self, result):
        mover = result.migrations[0].tenant
        run = result.run_results[mover]
        assert run.mean_power is None  # merged across machines
        assert len(run.samples) == len(run.settings_used)


def build_warmth_scenario(warm):
    """One knobbed tenant on a floor-capped machine; scripted move at 12 s.

    The cap pins machine 0 at its slowest P-state, so the tenant's
    controller integrates up an elevated speedup (dynamic knobs absorb
    the DVFS slowdown).  The scripted policy then moves the tenant to
    the uncapped machine 1 — warm or cold — which is exactly the
    operating-point-preservation question: does the destination's
    first control period continue the source's last?
    """
    system = built_service_system()
    machines = [experiment_machine(), experiment_machine()]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )
    floor0 = machine_cap_floor(machines[0])
    ceiling1 = machine_cap_ceiling(machines[1])

    class ScriptedMove:
        def __init__(self):
            self.moved = False

        def initial_budget_watts(self):
            return floor0 + ceiling1

        def barrier_times(self, horizon):
            return ()

        def decide(self, view):
            actions = [SetCaps((floor0, ceiling1))]
            if view.time >= 12.0 and not self.moved:
                self.moved = True
                actions.append(Migrate("mover", 1, 1.0, warm=warm))
            return actions

    def make_runtime(machine):
        return PowerDialRuntime(
            app=ServiceApp(),
            table=system.table,
            machine=machine,
            target_rate=target,
        )

    spec = TenantSpec(
        name="mover",
        trace=poisson_trace(2.5, 20.0, seed=9),
        sla=LatencySLA(1.0, 0.9),
        job_factory=request_stream(seed=90),
    )
    binding = InstanceBinding(
        tenant=spec,
        runtime=make_runtime(machines[0]),
        machine_index=0,
        runtime_factory=make_runtime,
    )
    return DatacenterEngine(
        machines, [binding], policy=ScriptedMove(), control_period=4.0
    )


class TestWarmVersusColdMigration:
    def handoff_speedups(self, warm):
        engine = build_warmth_scenario(warm)
        result = engine.run()
        assert len(result.migrations) == 1
        assert result.migrations[0].warm is warm
        binding = engine.bindings[0]
        source_segment = binding.run_segments[-1]
        dest_segment = binding.runtime.finish()
        assert source_segment.samples and dest_segment.samples
        return (
            source_segment.samples[-1].commanded_speedup,
            dest_segment.samples[0].commanded_speedup,
        )

    def test_warm_migration_preserves_operating_point(self):
        source_last, dest_first = self.handoff_speedups(warm=True)
        assert source_last > 1.0  # the cap actually elevated the point
        assert dest_first == source_last  # float-exact continuation

    def test_cold_migration_loses_operating_point(self):
        source_last, dest_first = self.handoff_speedups(warm=False)
        assert source_last > 1.0
        assert dest_first == 1.0  # restarted at the baseline


CONSOLIDATION_HORIZON = 30.0
CONSOLIDATION_BUDGET = 800.0


def build_consolidation_scenario(backend, workers=None):
    """4 one-tenant machines, diurnal trough traffic, shocked budget.

    The `--policy consolidating` stack as the CLI would assemble it: the
    quiet ends of the horizon pack tenants onto fewer machines with
    warm migrations (crossing shard boundaries on the sharded backend),
    the mid-run peak spreads them back, and the budget schedule drops
    the fleet budget mid-run and restores it.
    """
    system = built_service_system()
    machines = [experiment_machine() for _ in range(4)]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )

    def make_runtime(machine):
        return PowerDialRuntime(
            app=ServiceApp(),
            table=system.table,
            machine=machine,
            target_rate=target,
        )

    bindings = []
    for index in range(4):
        spec = TenantSpec(
            name=f"t{index}",
            trace=diurnal_trace(
                1.0,
                CONSOLIDATION_HORIZON,
                period=CONSOLIDATION_HORIZON,
                trough_fraction=0.1,
                seed=40 + index,
            ),
            sla=LatencySLA(1.0, 0.9),
            job_factory=request_stream(seed=400 + index),
            max_queue_depth=8,
        )
        bindings.append(
            InstanceBinding(
                tenant=spec,
                runtime=make_runtime(machines[index]),
                machine_index=index,
                runtime_factory=make_runtime,
            )
        )
    policy = build_policy(
        "consolidating",
        CONSOLIDATION_BUDGET,
        machines,
        schedule=BudgetSchedule(
            ((10.0, 0.94 * CONSOLIDATION_BUDGET), (20.0, CONSOLIDATION_BUDGET))
        ),
    )
    return DatacenterEngine(
        machines,
        bindings,
        policy=policy,
        control_period=3.0,
        backend=backend,
        workers=workers,
    )


class TestConsolidationSerial:
    @pytest.fixture(scope="class")
    def result(self):
        return build_consolidation_scenario("serial").run()

    def test_scenario_packs_warm(self, result):
        assert result.migrations, "trough must trigger packing"
        assert all(move.warm for move in result.migrations)
        # Packing actually reduced the occupied-machine count at some
        # point: some machine both lost and never regained a tenant
        # before another move happened.
        assert len(result.migrations) >= 2

    def test_budget_shock_applied(self, result):
        assert result.budget_history == [
            (0.0, CONSOLIDATION_BUDGET),
            (10.0, 0.94 * CONSOLIDATION_BUDGET),
            (20.0, CONSOLIDATION_BUDGET),
        ]

    def test_parked_machines_sit_at_their_floor(self, result):
        """After the first pack, some cap equals the machine floor."""
        floors = [183.0] * 4  # experiment_machine floor, within 1 W
        parked_caps = [
            caps
            for at, caps in result.cap_history
            if at > 0.0 and any(cap < floors[0] + 1.0 for cap in caps)
        ]
        assert parked_caps, "no barrier ever parked a machine at its floor"

    def test_no_request_lost_across_warm_moves(self, result):
        for report in result.tenant_reports:
            assert report.offered == report.admitted + report.rejected
            assert report.completed == report.admitted

    def test_conservation_survives_warm_migration(self, result):
        assert result.energy_conservation_rel_error() <= 1e-9


class TestConsolidationParity:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return build_consolidation_scenario("serial").run()

    @needs_fork
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_byte_identical(self, serial_result, workers):
        sharded = build_consolidation_scenario("sharded", workers=workers).run()
        assert sharded.bills == serial_result.bills
        assert sharded.tenant_reports == serial_result.tenant_reports
        assert sharded.cap_history == serial_result.cap_history
        assert sharded.budget_history == serial_result.budget_history
        assert sharded.migrations == serial_result.migrations
        assert sharded.idle_energy_joules == serial_result.idle_energy_joules
        assert sharded.total_energy_joules == serial_result.total_energy_joules
        assert sharded.makespan == serial_result.makespan
        for name, run in serial_result.run_results.items():
            other = sharded.run_results[name]
            assert run.samples == other.samples
            assert run.outputs_by_job == other.outputs_by_job
            assert run.energy_joules == other.energy_joules

    def test_eager_matches_serial(self, serial_result):
        eager = build_consolidation_scenario("eager").run()
        assert eager.tenant_reports == serial_result.tenant_reports
        assert eager.migrations == serial_result.migrations
        assert eager.budget_history == serial_result.budget_history
        assert eager.energy_conservation_rel_error() <= 1e-9


class TestMigrationAndShockParity:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return build_migration_scenario("serial").run()

    @needs_fork
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_byte_identical(self, serial_result, workers):
        sharded = build_migration_scenario("sharded", workers=workers).run()
        assert sharded.bills == serial_result.bills
        assert sharded.tenant_reports == serial_result.tenant_reports
        assert sharded.cap_history == serial_result.cap_history
        assert sharded.budget_history == serial_result.budget_history
        assert sharded.migrations == serial_result.migrations
        assert sharded.idle_energy_joules == serial_result.idle_energy_joules
        assert sharded.total_energy_joules == serial_result.total_energy_joules
        assert sharded.makespan == serial_result.makespan
        assert sharded.budget_watts == serial_result.budget_watts
        for name, run in serial_result.run_results.items():
            other = sharded.run_results[name]
            assert run.samples == other.samples
            assert run.outputs_by_job == other.outputs_by_job
            assert run.energy_joules == other.energy_joules

    def test_eager_matches_serial(self, serial_result):
        """The eager baseline takes the same decisions; float sums may
        differ by ulps (idle-interval chopping), so compare those
        approximately."""
        eager = build_migration_scenario("eager").run()
        assert eager.tenant_reports == serial_result.tenant_reports
        assert eager.migrations == serial_result.migrations
        assert eager.budget_history == serial_result.budget_history
        assert eager.energy_conservation_rel_error() <= 1e-9
        assert eager.total_energy_joules == pytest.approx(
            serial_result.total_energy_joules, rel=1e-9
        )
        for eager_bill, serial_bill in zip(eager.bills, serial_result.bills):
            assert eager_bill.energy_joules == pytest.approx(
                serial_bill.energy_joules, rel=1e-9
            )
            assert eager_bill.qos_loss_seconds == pytest.approx(
                serial_bill.qos_loss_seconds, rel=1e-9, abs=1e-12
            )
