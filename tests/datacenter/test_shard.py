"""Serial-vs-sharded parity and backend plumbing tests.

The sharded backend's contract is *identical results*: same seeds, same
scenario, byte-identical per-tenant reports, cap history, and pool
energy as the serial scheduler, for any worker count.  These tests pin
that contract with a contention-heavy, arbitrated, multi-machine
scenario (co-resident tenants, mixed trace shapes) plus the degenerate
worker counts (1 worker; more workers than machines).
"""

import os
import time

import pytest

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter import (
    DatacenterEngine,
    EngineError,
    InstanceBinding,
    LatencySLA,
    PowerArbiter,
    ServiceApp,
    TenantSpec,
    burst_trace,
    fork_available,
    partition_machines,
    poisson_trace,
    request_stream,
    service_training_jobs,
)
from repro.experiments.common import experiment_machine
from repro.experiments.registry import built_service_system

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded backend requires fork start method"
)

HORIZON = 18.0


def build_scenario(backend, workers=None, arbitrated=True):
    """4 machines, 6 tenants (2 machines doubly loaded), mixed traffic."""
    system = built_service_system()
    machines = [experiment_machine() for _ in range(4)]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )
    placements = [0, 0, 1, 2, 2, 3]
    traces = [
        poisson_trace(2.0, HORIZON, seed=21),
        burst_trace(0.3, 2.5, HORIZON, burst_every=8.0, burst_length=3.0, seed=22),
        poisson_trace(2.6, HORIZON, seed=23),
        poisson_trace(1.2, HORIZON, seed=24),
        burst_trace(0.2, 2.0, HORIZON, burst_every=9.0, burst_length=4.0, seed=25),
        poisson_trace(0.4, HORIZON, seed=26),
    ]
    bindings = []
    for index, (machine_index, trace) in enumerate(zip(placements, traces)):
        qos_cap = 0.0 if index == 2 else None
        table = (
            system.table if qos_cap is None else system.table.with_qos_cap(qos_cap)
        )
        runtime = PowerDialRuntime(
            app=ServiceApp(),
            table=table,
            machine=machines[machine_index],
            target_rate=target,
        )
        spec = TenantSpec(
            name=f"tenant-{index}",
            trace=trace,
            sla=LatencySLA(latency_bound=1.0, attainment_target=0.9),
            job_factory=request_stream(seed=300 + index),
            qos_cap=qos_cap,
            max_queue_depth=8,
        )
        bindings.append(
            InstanceBinding(tenant=spec, runtime=runtime, machine_index=machine_index)
        )
    policy = (
        PowerArbiter(780.0, machines, gain=8.0) if arbitrated else None
    )
    return DatacenterEngine(
        machines,
        bindings,
        policy=policy,
        control_period=5.0,
        backend=backend,
        workers=workers,
    )


def assert_identical(left, right):
    """Byte-identical result comparison (dataclass equality is exact)."""
    assert left.tenant_reports == right.tenant_reports
    assert left.bills == right.bills
    assert left.idle_energy_joules == right.idle_energy_joules
    assert left.machine_mean_power == right.machine_mean_power
    assert left.total_energy_joules == right.total_energy_joules
    assert left.makespan == right.makespan
    assert left.cap_history == right.cap_history
    assert left.budget_watts == right.budget_watts
    for name, run in left.run_results.items():
        other = right.run_results[name]
        assert run.samples == other.samples
        assert run.outputs_by_job == other.outputs_by_job
        assert run.energy_joules == other.energy_joules
        assert run.mean_power == other.mean_power


@needs_fork
class TestShardedParity:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return build_scenario("serial").run()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_matches_serial(self, serial_result, workers):
        sharded = build_scenario("sharded", workers=workers).run()
        assert_identical(sharded, serial_result)

    def test_more_workers_than_machines_clamped(self, serial_result):
        sharded = build_scenario("sharded", workers=16).run()
        assert_identical(sharded, serial_result)

    def test_unarbitrated_parity(self):
        serial = build_scenario("serial", arbitrated=False).run()
        sharded = build_scenario("sharded", workers=2, arbitrated=False).run()
        assert_identical(sharded, serial)
        assert serial.cap_history == []

    def test_parent_bindings_reflect_worker_stats(self):
        engine = build_scenario("sharded", workers=2)
        result = engine.run()
        for binding, report in zip(engine.bindings, result.tenant_reports):
            assert binding.stats.offered == report.offered
            assert len(binding.stats.completions) == report.completed

    def test_shard_busy_telemetry_populated(self):
        engine = build_scenario("sharded", workers=2)
        engine.run()
        assert engine.shard_busy_seconds is not None
        assert len(engine.shard_busy_seconds) == 2
        assert all(busy > 0.0 for busy in engine.shard_busy_seconds)


class TestEagerSerialConsistency:
    """The lazy scheduler preserves the reference loop's results."""

    def test_reports_match_eager_baseline(self):
        eager = build_scenario("eager").run()
        serial = build_scenario("serial").run()
        # Integer accounting is exact; idle-interval merging may move
        # float accumulation by ulps, so compare those approximately.
        assert serial.tenant_reports == eager.tenant_reports
        assert serial.total_energy_joules == pytest.approx(
            eager.total_energy_joules, rel=1e-9
        )
        assert serial.makespan == pytest.approx(eager.makespan, rel=1e-9)
        assert len(serial.cap_history) == len(eager.cap_history)


class TestPartitioning:
    def test_round_robin_partition(self):
        assert partition_machines(5, 2) == [[0, 2, 4], [1, 3]]
        assert partition_machines(3, 3) == [[0], [1], [2]]

    def test_workers_clamped_to_machines(self):
        assert partition_machines(2, 8) == [[0], [1]]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            partition_machines(4, 0)


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        machines = [experiment_machine()]
        system = built_service_system()
        target = measure_baseline_rate(
            ServiceApp, service_training_jobs()[0], machines[0]
        )
        runtime = PowerDialRuntime(
            app=ServiceApp(),
            table=system.table,
            machine=machines[0],
            target_rate=target,
        )
        spec = TenantSpec(
            name="t",
            trace=poisson_trace(1.0, 5.0, seed=1),
            sla=LatencySLA(1.0, 0.9),
            job_factory=request_stream(seed=1),
        )
        binding = InstanceBinding(tenant=spec, runtime=runtime, machine_index=0)
        with pytest.raises(EngineError):
            DatacenterEngine(machines, [binding], backend="threads")
        with pytest.raises(EngineError):
            DatacenterEngine(machines, [binding], backend="sharded", workers=0)


def stray_segments():
    """The ``reproshard_*`` segments currently live in ``/dev/shm``."""
    from repro.datacenter import shard

    try:
        return [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(shard.SEGMENT_PREFIX)
        ]
    except FileNotFoundError:  # pragma: no cover - non-tmpfs hosts
        return []


@needs_fork
class TestWorkerSupervision:
    """The coordinator must detect dead and hung workers at barriers.

    The tests replace ``shard._publish_upstream`` before the engine
    forks (the fork start method inherits the patched module), so the
    failure happens inside a real worker process mid-protocol — and
    assert the supervisor raises an :class:`EngineError` naming the
    worker, its machines, and the barrier, instead of blocking forever
    on a ready flag that will never be stamped.  The death test also
    pins the shared-memory lifecycle: a run killed mid-protocol must
    still unlink every ``reproshard_*`` segment.
    """

    def test_worker_death_mid_run_is_named(self, monkeypatch):
        from repro.datacenter import shard

        real_publish = shard._publish_upstream
        state = {"published": 0}

        def dying_publish(segment, seq, records):
            # Worker 1 fail-stops on entry to its third barrier
            # publish: flag never stamped, coordinator must notice.
            if segment.name.endswith("_1_up"):
                state["published"] += 1
                if state["published"] > 2:
                    os._exit(3)
            return real_publish(segment, seq, records)

        monkeypatch.setattr(shard, "_publish_upstream", dying_publish)
        engine = build_scenario("sharded", workers=2)
        with pytest.raises(
            EngineError,
            match=r"shard worker 1 \(machines \[.*\]\) at barrier "
            r"t=\S+ died without publishing its barrier delta "
            r"\(exit code 3\)",
        ):
            engine.run()
        assert stray_segments() == []

    def test_hung_worker_is_named_with_timeout(self, monkeypatch):
        from repro.datacenter import shard

        real_publish = shard._publish_upstream

        def wedged_publish(segment, seq, records):
            # Worker 1 wedges mid-segment-write before stamping the
            # ready flag — the shared-memory half of the supervisor
            # must time out and name it.
            if segment.name.endswith("_1_up"):
                time.sleep(60.0)
            return real_publish(segment, seq, records)

        monkeypatch.setattr(shard, "_publish_upstream", wedged_publish)
        monkeypatch.setattr(shard, "_WORKER_BARRIER_TIMEOUT_SECONDS", 2.0)
        engine = build_scenario("sharded", workers=2)
        with pytest.raises(
            EngineError,
            match=r"shard worker 1 \(machines \[.*\]\) at barrier "
            r"t=\S+ hung: no barrier-ready flag \(seq \d+\) within 2s "
            r"\(pid \d+\)",
        ):
            engine.run()
        assert stray_segments() == []


@needs_fork
class TestSegmentLifecycle:
    """Shared-memory segments never outlive the run that created them."""

    def test_completed_run_leaves_no_segments(self):
        build_scenario("sharded", workers=2).run()
        assert stray_segments() == []

    def test_barrier_stats_populated(self):
        engine = build_scenario("sharded", workers=2)
        engine.run()
        stats = engine.barrier_stats
        assert stats is not None
        assert stats["protocol"] == "views"
        assert stats["barriers"] > 0
        assert stats["payload_bytes"] > 0
        assert stats["wait_seconds"] >= 0.0
        assert engine.coordinator_busy_seconds is not None
        assert engine.coordinator_busy_seconds > 0.0
