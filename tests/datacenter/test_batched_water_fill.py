"""Property tests: vectorized water-filling vs the scalar arbiter.

``batched_water_fill`` must be *bitwise identical* to
``repro.datacenter.arbiter.water_fill`` for finite, non-negative watt
inputs — same caps, same conservation, same tie-breaking — because the
engine's billing depends on the exact caps the arbiter grants.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batched import batched_water_fill
from repro.datacenter.arbiter import water_fill

watts = st.floats(
    min_value=0.0, max_value=300.0, allow_nan=False, allow_infinity=False
)
weights_st = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)

pools = st.lists(
    st.tuples(weights_st, watts, watts),  # (weight, floor, headroom)
    min_size=1,
    max_size=12,
)
budgets = st.floats(
    min_value=0.0, max_value=3000.0, allow_nan=False, allow_infinity=False
)


def unpack(pool):
    weights = [row[0] for row in pool]
    floors = [row[1] for row in pool]
    ceilings = [floor + headroom for _, floor, headroom in pool]
    return weights, floors, ceilings


class TestBitwiseEquivalence:
    @given(pool=pools, budget=budgets)
    @settings(max_examples=300, deadline=None)
    def test_caps_are_bitwise_identical(self, pool, budget):
        """Arbitrary floors/ceilings/budgets: identical caps, every bit."""
        weights, floors, ceilings = unpack(pool)
        scalar = water_fill(weights, floors, ceilings, budget)
        batched = batched_water_fill(weights, floors, ceilings, budget)
        assert [cap.hex() for cap in batched] == [cap.hex() for cap in scalar]

    @given(pool=pools, budget=budgets)
    @settings(max_examples=300, deadline=None)
    def test_caps_respect_floors_ceilings_and_budget(self, pool, budget):
        """Conservation: floors guaranteed, ceilings honored, no watt
        granted beyond the surplus."""
        weights, floors, ceilings = unpack(pool)
        caps = batched_water_fill(weights, floors, ceilings, budget)
        for cap, floor, ceiling in zip(caps, floors, ceilings):
            assert cap >= floor
            assert cap <= ceiling + 1e-9
        granted = sum(caps) - sum(floors)
        surplus = max(0.0, budget - sum(floors))
        assert granted <= surplus + 1e-6

    @given(pool=pools, budget=budgets)
    @settings(max_examples=100, deadline=None)
    def test_zero_weights_keep_floors(self, pool, budget):
        """Nobody bids: everyone keeps exactly the floor (both paths)."""
        _, floors, ceilings = unpack(pool)
        weights = [0.0] * len(floors)
        assert batched_water_fill(weights, floors, ceilings, budget) == floors
        assert water_fill(weights, floors, ceilings, budget) == floors

    @given(
        pool=st.lists(
            st.tuples(weights_st, watts, watts), min_size=2, max_size=8
        ),
        budget=budgets,
    )
    @settings(max_examples=100, deadline=None)
    def test_tie_breaking_matches_on_equal_weights(self, pool, budget):
        """Equal bids split the surplus identically in both kernels —
        the cascade order (ascending machine index) is inherited."""
        _, floors, ceilings = unpack(pool)
        weights = [1.0] * len(floors)
        scalar = water_fill(weights, floors, ceilings, budget)
        batched = batched_water_fill(weights, floors, ceilings, budget)
        assert batched == scalar


class TestEdgeCases:
    def test_empty_pool(self):
        assert batched_water_fill([], [], [], 100.0) == []
        assert water_fill([], [], [], 100.0) == []

    def test_budget_below_floors_keeps_floors(self):
        floors = [100.0, 120.0]
        caps = batched_water_fill([1.0, 1.0], floors, [200.0, 200.0], 50.0)
        assert caps == floors

    def test_cascade_returns_excess_to_open_machines(self):
        # Machine 0 saturates instantly; its share cascades to machine 1.
        caps = batched_water_fill(
            [1.0, 1.0], [100.0, 100.0], [110.0, 300.0], 300.0
        )
        expected = water_fill(
            [1.0, 1.0], [100.0, 100.0], [110.0, 300.0], 300.0
        )
        assert caps == expected
        assert caps[0] == 110.0  # pinned at its ceiling
        assert caps[1] > 150.0  # got the cascaded excess

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            batched_water_fill([1.0], [1.0, 2.0], [3.0, 4.0], 10.0)
        with pytest.raises(ValueError):
            batched_water_fill([1.0, 1.0], [1.0, 2.0], [3.0], 10.0)

    def test_numpy_inputs_accepted(self):
        caps = batched_water_fill(
            np.asarray([1.0, 2.0]),
            np.asarray([50.0, 60.0]),
            np.asarray([150.0, 160.0]),
            200.0,
        )
        assert caps == water_fill([1.0, 2.0], [50.0, 60.0], [150.0, 160.0], 200.0)
