"""Hierarchical arbitration tests: grouping, caps, and backend parity.

``hier-arbitrated`` is the policy the shard barrier-protocol v2 was
built around: group-aggregate arbitration whose cross-shard state is
O(groups), shipped as per-machine demand scores instead of full tenant
views.  Its contract is the same as every other policy's
(ARCHITECTURE.md invariant 4): byte-identical results on serial and
sharded backends for any worker count — including runs where the
demand fast path is *disabled* (budget schedules, chaos kills, gray
failure) and the policy rides the general view protocol.
"""

import pytest

from repro.datacenter import (
    DatacenterEngine,
    HierarchicalArbiter,
    fork_available,
)
from repro.datacenter.controlplane.actions import ClusterView, SetCaps
from repro.datacenter.controlplane.hierarchy import (
    DEFAULT_GROUPS,
    round_robin_groups,
)
from repro.datacenter.caps import ArbiterError
from repro.datacenter.faults import ActuatorFault, FaultPlan, SensorFault
from repro.datacenter.journal import JournalWriter, journaled_run, replay
from repro.experiments.common import experiment_machine
from repro.experiments.datacenter import (
    TenantScenario,
    build_engine_from_config,
    scenario_config,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded backend requires fork start method"
)

HORIZON = 24.0


def hier_tenants(machines):
    """Five mixed tenants over the first ``machines`` machines."""
    return (
        TenantScenario("alpha", 0, "steady", rate=1.4, seed=1),
        TenantScenario(
            "beta", 1 % machines, "steady", rate=0.8, qos_cap=0.0, seed=2
        ),
        TenantScenario("gamma", 2 % machines, "burst", rate=1.5, seed=3),
        TenantScenario("delta", 3 % machines, "steady", rate=1.0, seed=4),
        TenantScenario("epsilon", 0, "burst", rate=0.6, seed=5),
    )


GRAY_PLAN = FaultPlan(
    sensors=(SensorFault(0, 4.0, 12.0, mode="noise", amplitude=0.5),),
    actuators=(ActuatorFault(1, 6.0, 18.0, mode="drop"),),
    seed=5,
)

SCENARIOS = {
    "plain": {},
    "budget-shock": {"budget_trace": [[0.0, 840.0], [12.0, 790.0]]},
    "chaos-kill": {"chaos": {"kills": 1, "seed": 3}},
    "gray-failure": {"faults": GRAY_PLAN},
}


def make_config(scenario="plain", machines=4, budget=840.0):
    kwargs = dict(SCENARIOS[scenario])
    trace = kwargs.pop("budget_trace", None)
    if trace is not None:
        from repro.datacenter.controlplane import BudgetSchedule

        kwargs["budget_trace"] = BudgetSchedule(
            tuple((at, watts) for at, watts in trace)
        )
    return scenario_config(
        hier_tenants(machines),
        machines,
        HORIZON,
        budget,
        "hier-arbitrated",
        control_period=6.0,
        **kwargs,
    )


def assert_identical(left, right):
    """Byte-identical result comparison (dataclass equality is exact)."""
    assert left.tenant_reports == right.tenant_reports
    assert left.bills == right.bills
    assert left.idle_energy_joules == right.idle_energy_joules
    assert left.machine_mean_power == right.machine_mean_power
    assert left.total_energy_joules == right.total_energy_joules
    assert left.makespan == right.makespan
    assert left.cap_history == right.cap_history
    assert left.budget_history == right.budget_history
    assert left.budget_watts == right.budget_watts
    assert left.migrations == right.migrations
    assert left.failures == right.failures
    assert left.faults == right.faults
    assert left.retries == right.retries


class TestGrouping:
    def test_round_robin_membership_is_backend_independent(self):
        groups = round_robin_groups(10, 4)
        assert groups == [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]]

    def test_groups_clamped_to_machine_count(self):
        assert round_robin_groups(3, DEFAULT_GROUPS) == [[0], [1], [2]]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ArbiterError):
            round_robin_groups(0, 4)
        with pytest.raises(ArbiterError):
            round_robin_groups(4, 0)


class TestArbitration:
    def build(self, n=10, budget=2100.0, gain=8.0):
        machines = [experiment_machine() for _ in range(n)]
        return HierarchicalArbiter(budget, machines, gain=gain)

    def test_caps_conserve_budget_and_respect_limits(self):
        arbiter = self.build()
        scores = [0.0, 3.0, 0.5, 0.0, 1.2, 0.0, 0.0, 2.4, 0.1, 0.0]
        caps = arbiter.caps_for_demand(scores)
        assert sum(caps) <= arbiter.budget_watts + 1e-6
        for cap, floor, ceiling in zip(
            caps, arbiter.floors, arbiter.ceilings
        ):
            assert floor - 1e-9 <= cap <= ceiling + 1e-9

    def test_demand_shifts_watts_toward_violating_machines(self):
        arbiter = self.build(budget=2000.0)
        idle = arbiter.caps_for_demand([0.0] * 10)
        hot = arbiter.caps_for_demand([0.0] * 9 + [5.0])
        assert hot[9] > idle[9]

    def test_decide_routes_through_caps_for_demand(self):
        arbiter = self.build(n=5, budget=1050.0)
        from repro.datacenter.controlplane.actions import MachineView

        view = ClusterView(
            time=0.0,
            budget_watts=arbiter.budget_watts,
            machines=tuple(
                MachineView(
                    index=i,
                    cap_floor=arbiter.floors[i],
                    cap_ceiling=arbiter.ceilings[i],
                    cap_watts=None,
                )
                for i in range(5)
            ),
            tenants=(),
        )
        [action] = arbiter.decide(view)
        assert isinstance(action, SetCaps)
        assert list(action.caps) == arbiter.caps_for_demand([0.0] * 5)

    def test_infeasible_budget_rejected(self):
        machines = [experiment_machine() for _ in range(4)]
        with pytest.raises(ArbiterError):
            HierarchicalArbiter(1.0, machines)

    def test_negative_scores_rejected(self):
        arbiter = self.build(n=2, budget=420.0)
        with pytest.raises(ArbiterError):
            arbiter.caps_for_demand([-0.1, 0.0])


@needs_fork
class TestHierParity:
    """Serial vs sharded byte-parity for hier-arbitrated, both wire
    protocols: the demand fast path (plain) and the view fallback
    (budget shock, chaos warm-restores, gray failure)."""

    @pytest.fixture(scope="class")
    def serial_results(self):
        return {
            scenario: build_engine_from_config(make_config(scenario)).run()
            for scenario in SCENARIOS
        }

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_matches_serial(self, serial_results, scenario, workers):
        sharded = build_engine_from_config(
            make_config(scenario), backend="sharded", workers=workers
        ).run()
        assert_identical(sharded, serial_results[scenario])

    def test_chaos_scenario_really_replaces_tenants(self, serial_results):
        result = serial_results["chaos-kill"]
        assert result.failures
        assert any(f.replacements for f in result.failures)

    def test_gray_scenario_really_faults(self, serial_results):
        assert serial_results["gray-failure"].faults


@needs_fork
class TestDemandProtocol:
    def test_bare_hierarchy_uses_demand_deltas(self):
        engine = build_engine_from_config(
            make_config("plain"), backend="sharded", workers=2
        )
        engine.run()
        assert engine.barrier_stats["protocol"] == "demand"
        assert engine.barrier_stats["payload_bytes"] > 0

    def test_wrapped_hierarchy_falls_back_to_views(self):
        engine = build_engine_from_config(
            make_config("budget-shock"), backend="sharded", workers=2
        )
        engine.run()
        assert engine.barrier_stats["protocol"] == "views"

    def test_serial_reports_in_process_protocol(self):
        engine = build_engine_from_config(make_config("plain"))
        engine.run()
        assert engine.barrier_stats["protocol"] == "in-process"
        assert engine.barrier_stats["apply_seconds"] > 0.0


@needs_fork
class TestHierJournalParity:
    """A journaled hier run writes identical barrier records on both
    backends (the header line differs only by its backend/workers
    metadata, by design), and the sharded journal replays on the
    serial backend to byte-identical bills."""

    def record(self, path, backend, workers=None):
        config = make_config("plain")
        writer = JournalWriter(
            str(path),
            {
                "scenario": {
                    "builder": "datacenter-experiment",
                    "module": "repro.experiments.datacenter",
                    "config": config,
                },
                "backend": backend,
                "workers": workers,
                "initial_budget_watts": config["budget_watts"],
            },
        )
        engine = build_engine_from_config(
            config, backend=backend, workers=workers, journal=writer
        )
        with writer:
            return journaled_run(engine, writer)

    def test_journal_bytes_match_across_backends(self, tmp_path):
        serial_path = tmp_path / "serial.journal"
        sharded_path = tmp_path / "sharded.journal"
        serial_result = self.record(serial_path, "serial")
        sharded_result = self.record(sharded_path, "sharded", workers=2)
        assert_identical(sharded_result, serial_result)
        serial_lines = serial_path.read_bytes().split(b"\n")
        sharded_lines = sharded_path.read_bytes().split(b"\n")
        assert serial_lines[1:] == sharded_lines[1:]

    def test_sharded_journal_replays_to_identical_bills(self, tmp_path):
        path = tmp_path / "sharded.journal"
        live = self.record(path, "sharded", workers=2)
        replayed = replay(str(path))
        assert replayed.bills == live.bills
