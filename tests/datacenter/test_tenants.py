"""Tests for tenant SLAs, stats accounting, and report summaries."""

import pytest

from repro.datacenter.tenants import (
    LatencySLA,
    TenantError,
    TenantSpec,
    TenantStats,
)
from repro.datacenter.traffic import poisson_trace


def spec(**overrides):
    defaults = dict(
        name="t",
        trace=poisson_trace(1.0, 10.0, seed=1),
        sla=LatencySLA(latency_bound=1.0, attainment_target=0.9),
        job_factory=lambda index: [float(index)],
    )
    defaults.update(overrides)
    return TenantSpec(**defaults)


class TestValidation:
    def test_sla_bounds(self):
        with pytest.raises(TenantError):
            LatencySLA(latency_bound=0.0)
        with pytest.raises(TenantError):
            LatencySLA(latency_bound=1.0, attainment_target=0.0)

    def test_spec_bounds(self):
        with pytest.raises(TenantError):
            spec(max_queue_depth=0)
        with pytest.raises(TenantError):
            spec(weight=0.0)
        with pytest.raises(TenantError):
            spec(qos_cap=-0.1)


class TestStats:
    def test_admitted_is_offered_minus_rejected(self):
        stats = TenantStats()
        for _ in range(5):
            stats.record_offer()
        stats.record_rejection()
        assert stats.admitted == 4
        assert stats.rejected == 1

    def test_completion_before_arrival_rejected(self):
        stats = TenantStats()
        with pytest.raises(TenantError):
            stats.record_completion(arrival=5.0, completion=4.0)

    def test_recent_attainment_windows(self):
        stats = TenantStats()
        # Two fast requests early, one slow request late.
        stats.record_completion(arrival=0.0, completion=0.5)
        stats.record_completion(arrival=1.0, completion=1.4)
        stats.record_completion(arrival=8.0, completion=11.0)
        assert stats.recent_attainment(1.0, since=0.0, until=2.0) == 1.0
        assert stats.recent_attainment(1.0, since=2.0, until=12.0) == 0.0
        assert stats.recent_attainment(1.0, since=0.0, until=12.0) == pytest.approx(
            2 / 3
        )

    def test_empty_window_is_none(self):
        stats = TenantStats()
        assert stats.recent_attainment(1.0, since=0.0, until=5.0) is None


class TestReport:
    def test_report_attainment_and_percentiles(self):
        stats = TenantStats()
        sla = LatencySLA(latency_bound=1.0, attainment_target=0.5)
        for arrival, completion in [(0, 0.4), (1, 1.5), (2, 4.0), (3, 3.2)]:
            stats.record_offer()
            stats.record_completion(arrival, completion)
        report = stats.report("t", sla)
        assert report.completed == 4
        # Latencies 0.4, 0.5, 2.0, 0.2: three of four within the bound.
        assert report.attainment == pytest.approx(0.75)
        assert report.sla_met
        assert report.mean_latency == pytest.approx((0.4 + 0.5 + 2.0 + 0.2) / 4)
        assert report.p95_latency <= 2.0

    def test_report_with_no_completions(self):
        report = TenantStats().report("idle", LatencySLA(1.0, 0.9))
        assert report.completed == 0
        assert report.attainment == 0.0
        assert not report.sla_met
