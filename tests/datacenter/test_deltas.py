"""Property tests for the shard barrier-plane delta codec.

The codec's contract (ARCHITECTURE.md invariant 10) has three legs:

* **byte-stable** — the same values always pack to the same bytes, so
  "did it change?" is decidable by byte comparison alone;
* **round-trip exact** — decode(encode(x)) reproduces every field
  bit-for-bit (IEEE-754 doubles included, ``-0.0`` and all);
* **composable** — records are full snapshots of the dynamic fields,
  so applying *any* record sequence over a resident table leaves the
  table equal to applying only the last record per key, which is what
  lets senders ship only changed keys.

All three are checked with hypothesis over the full value domain the
engine can produce (finite floats, 64-bit counters, arbitrary
interleavings of keys).
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import deltas
from repro.datacenter.controlplane.actions import TenantView

N_BINDINGS = 8
NAMES = [f"tenant-{i}" for i in range(N_BINDINGS)]
WEIGHTS = [1.0 + 0.25 * i for i in range(N_BINDINGS)]

finite = st.floats(allow_nan=False, allow_infinity=False)
nonneg = st.floats(
    allow_nan=False, allow_infinity=False, min_value=0.0
)
counter = st.integers(min_value=0, max_value=2**62)
machine_index = st.integers(min_value=0, max_value=2**31 - 2)


@st.composite
def tenant_updates(draw):
    """One ``(binding_index, TenantView)`` pair with coherent statics."""
    bindex = draw(st.integers(min_value=0, max_value=N_BINDINGS - 1))
    view = TenantView(
        name=NAMES[bindex],
        machine_index=draw(machine_index),
        weight=WEIGHTS[bindex],
        sla_shortfall=draw(nonneg),
        pending_jobs=draw(counter),
        finished=draw(st.booleans()),
        energy_joules=draw(finite),
        busy_seconds=draw(finite),
        steps=draw(counter),
    )
    return bindex, view


def published(records):
    """Round ``records`` through a freshly zeroed segment buffer."""
    buffer = bytearray(
        deltas.HEADER.size + sum(len(r) for r in records)
    )
    count = deltas.publish(buffer, 1, records)
    assert deltas.read_header(buffer) == (1, count)
    return buffer, count


def bits(value: float) -> int:
    """The raw IEEE-754 representation (distinguishes -0.0 from 0.0)."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


class TestTenantRecords:
    @given(tenant_updates())
    @settings(deadline=None)
    def test_round_trip_reproduces_view_bit_for_bit(self, update):
        bindex, view = update
        record = deltas.encode_tenant_record(bindex, view)
        buffer, count = published([record])
        [(got_index, got)] = deltas.decode_tenant_records(
            buffer, count, NAMES, WEIGHTS
        )
        assert got_index == bindex
        assert got == view
        # Bitwise, not just ==: re-encoding the decoded view must give
        # back the original record (so the receiver's byte-compare
        # baseline is exact, -0.0 vs 0.0 included).
        assert deltas.encode_tenant_record(got_index, got) == record

    @given(tenant_updates())
    @settings(deadline=None)
    def test_encoding_is_byte_stable(self, update):
        bindex, view = update
        assert deltas.encode_tenant_record(
            bindex, view
        ) == deltas.encode_tenant_record(bindex, view)

    @given(st.lists(tenant_updates(), min_size=1, max_size=24))
    @settings(deadline=None)
    def test_record_sequences_compose(self, updates):
        # Applying the full interleaved sequence over a resident table
        # must equal applying only each key's final record — the
        # invariant that makes shipping only changed keys lossless.
        replayed: dict[int, TenantView] = {}
        records = [
            deltas.encode_tenant_record(bindex, view)
            for bindex, view in updates
        ]
        buffer, count = published(records)
        for bindex, view in deltas.decode_tenant_records(
            buffer, count, NAMES, WEIGHTS
        ):
            replayed[bindex] = view
        last_only = {bindex: view for bindex, view in updates}
        assert replayed == last_only


class TestScoreAndCapRecords:
    @given(machine_index, nonneg)
    @settings(deadline=None)
    def test_score_round_trip_is_exact(self, index, score):
        record = deltas.encode_score_record(index, score)
        buffer, count = published([record])
        [(got_index, got)] = deltas.decode_score_records(buffer, count)
        assert got_index == index
        assert bits(got) == bits(score)

    @given(machine_index, finite)
    @settings(deadline=None)
    def test_cap_round_trip_is_exact(self, index, watts):
        record = deltas.encode_cap_record(index, watts)
        buffer, count = published([record])
        [(got_index, got)] = deltas.decode_cap_records(buffer, count)
        assert got_index == index
        assert bits(got) == bits(watts)


class TestPublish:
    @given(
        st.lists(st.tuples(machine_index, finite), max_size=6),
        st.lists(st.tuples(machine_index, finite), max_size=6),
    )
    @settings(deadline=None)
    def test_republish_overwrites_header_and_payload(self, first, second):
        # A segment is reused every barrier: the header must always
        # describe the latest publish, and a shorter second payload
        # must not leak stale trailing records into the decode.
        size = deltas.HEADER.size + 6 * deltas.CAP_RECORD.size
        buffer = bytearray(size)
        deltas.publish(
            buffer,
            1,
            [deltas.encode_cap_record(i, w) for i, w in first],
        )
        count = deltas.publish(
            buffer,
            2,
            [deltas.encode_cap_record(i, w) for i, w in second],
        )
        assert deltas.read_header(buffer) == (2, len(second))
        decoded = deltas.decode_cap_records(buffer, count)
        assert [(i, bits(w)) for i, w in decoded] == [
            (i, bits(w)) for i, w in second
        ]

    def test_fresh_segment_reads_seq_zero(self):
        buffer = bytearray(deltas.HEADER.size)
        assert deltas.read_header(buffer) == (0, 0)
