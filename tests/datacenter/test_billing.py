"""Billing attribution tests: conservation, backend identity, ledgers.

The billing contract has two halves:

* **Conservation** — on every backend, the per-tenant billed
  watt-seconds plus the unattributed idle energy reproduce the metered
  pool energy (1e-9 relative; in practice float-reordering noise,
  ~1e-16), including across mid-run arbiter speed reallocations.
* **Backend identity** — serial and sharded runs of the same scenario
  produce byte-identical bills for any worker count.
"""

import pytest

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter import (
    CONSERVATION_TOLERANCE,
    BillingError,
    DatacenterEngine,
    InstanceBinding,
    LatencySLA,
    PowerArbiter,
    ServiceApp,
    TenantLedger,
    TenantSpec,
    burst_trace,
    fork_available,
    poisson_trace,
    request_stream,
    service_training_jobs,
)
from repro.datacenter.billing import qos_loss_seconds
from repro.experiments.common import experiment_machine
from repro.experiments.registry import built_service_system

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded backend requires fork start method"
)

HORIZON = 16.0


def build_scenario(backend, workers=None):
    """3 machines, 5 tenants, arbitrated under a tight budget.

    Machine 0 is heavily loaded by a knob-poor tenant so its SLA
    shortfall forces the arbiter to reallocate caps mid-run (the
    billing-under-speed-change case), while machines 1-2 host knobbed
    tenants with slack.
    """
    system = built_service_system()
    machines = [experiment_machine() for _ in range(3)]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )
    placements = [0, 0, 1, 2, 2]
    traces = [
        poisson_trace(2.8, HORIZON, seed=41),
        poisson_trace(1.0, HORIZON, seed=42),
        burst_trace(0.3, 2.0, HORIZON, burst_every=6.0, burst_length=2.5, seed=43),
        poisson_trace(0.8, HORIZON, seed=44),
        poisson_trace(0.5, HORIZON, seed=45),
    ]
    bindings = []
    for index, (machine_index, trace) in enumerate(zip(placements, traces)):
        qos_cap = 0.0 if index == 0 else None
        table = (
            system.table if qos_cap is None else system.table.with_qos_cap(qos_cap)
        )
        runtime = PowerDialRuntime(
            app=ServiceApp(),
            table=table,
            machine=machines[machine_index],
            target_rate=target,
        )
        spec = TenantSpec(
            name=f"tenant-{index}",
            trace=trace,
            sla=LatencySLA(latency_bound=0.8, attainment_target=0.95),
            job_factory=request_stream(seed=500 + index),
            qos_cap=qos_cap,
            weight=3.0 if index == 0 else 1.0,
            max_queue_depth=6,
        )
        bindings.append(
            InstanceBinding(tenant=spec, runtime=runtime, machine_index=machine_index)
        )
    policy = PowerArbiter(570.0, machines, gain=10.0)
    return DatacenterEngine(
        machines,
        bindings,
        policy=policy,
        control_period=4.0,
        backend=backend,
        workers=workers,
    )


def assert_conserved(result):
    summary = result.energy_conservation()
    assert summary["rel_error"] <= CONSERVATION_TOLERANCE, summary
    assert summary["billed_energy_joules"] > 0.0
    assert summary["unattributed_idle_joules"] >= 0.0


class TestConservation:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return build_scenario("serial").run()

    def test_serial_energy_conserved(self, serial_result):
        assert_conserved(serial_result)

    def test_eager_energy_conserved(self):
        assert_conserved(build_scenario("eager").run())

    def test_conserved_across_mid_run_reallocation(self, serial_result):
        """The arbiter actually moved caps mid-run, and billing held."""
        caps = {tuple(caps) for _, caps in serial_result.cap_history}
        assert len(caps) >= 2, "scenario did not exercise a reallocation"
        assert_conserved(serial_result)

    @needs_fork
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_energy_conserved_and_identical(self, serial_result, workers):
        sharded = build_scenario("sharded", workers=workers).run()
        assert_conserved(sharded)
        assert sharded.bills == serial_result.bills
        assert sharded.idle_energy_joules == serial_result.idle_energy_joules

    def test_bill_contents(self, serial_result):
        assert [b.tenant for b in serial_result.bills] == [
            f"tenant-{i}" for i in range(5)
        ]
        knob_poor = serial_result.bill_for("tenant-0")
        # Exact service: its table is baseline-only, so no QoS loss ever.
        assert knob_poor.qos_loss_seconds == 0.0
        assert knob_poor.mean_qos_loss == 0.0
        # The overloaded knob-poor tenant is the pool's big spender.
        assert knob_poor.energy_joules == max(
            b.energy_joules for b in serial_result.bills
        )
        for bill in serial_result.bills:
            assert bill.busy_seconds >= 0.0
            assert bill.offered == bill.admitted + bill.rejected
            assert bill.completed <= bill.admitted

    def test_busy_time_bounded_by_pool_time(self, serial_result):
        total_busy = sum(b.busy_seconds for b in serial_result.bills)
        assert total_busy <= serial_result.makespan * 3 + 1e-9

    def test_bill_to_dict_roundtrips_fields(self, serial_result):
        bill = serial_result.bills[0]
        payload = bill.to_dict()
        assert payload["tenant"] == bill.tenant
        assert payload["energy_joules"] == bill.energy_joules
        assert payload["qos_loss_seconds"] == bill.qos_loss_seconds
        assert set(payload) == {
            "tenant",
            "machine_index",
            "offered",
            "admitted",
            "rejected",
            "completed",
            "busy_seconds",
            "energy_joules",
            "qos_loss_seconds",
            "mean_qos_loss",
            "attainment",
            "sla_met",
        }

    def test_pre_run_meter_energy_goes_unattributed(self):
        engine = build_scenario("serial")
        # A machine that burned energy before the scenario (e.g. reused
        # after calibration) must not have it billed to any tenant.
        engine.machines[0].idle(2.0)
        pre_run = engine.machines[0].meter.energy_joules
        assert pre_run > 0.0
        result = engine.run()
        assert_conserved(result)
        assert result.unattributed_idle_joules >= pre_run


class TestLedger:
    def test_charge_accumulates(self):
        ledger = TenantLedger()
        ledger.charge(2.5, 0.5)
        ledger.charge(0.0, 0.0)
        assert ledger.energy_joules == 2.5
        assert ledger.busy_seconds == 0.5
        assert ledger.steps == 2

    def test_negative_charges_rejected(self):
        ledger = TenantLedger()
        with pytest.raises(BillingError):
            ledger.charge(-1.0, 0.1)
        with pytest.raises(BillingError):
            ledger.charge(1.0, -0.1)


class _FakeSample:
    def __init__(self, time):
        self.time = time


class _FakeSetting:
    def __init__(self, qos_loss):
        self.qos_loss = qos_loss


class _FakeRun:
    def __init__(self, times, losses):
        self.samples = [_FakeSample(t) for t in times]
        self.settings_used = [_FakeSetting(q) for q in losses]


class TestQosLossIntegral:
    def test_mismatched_run_rejected(self):
        with pytest.raises(BillingError):
            qos_loss_seconds(_FakeRun([0.0, 1.0], [0.0]))

    def test_interval_weighted_by_executing_setting(self):
        """A beat timestamps the START of its item: interval (t[i],
        t[i+1]] ran under settings[i].  Baseline item over [0, 1),
        degraded (0.5 loss) item over [1, 3): 0*1 + 0.5*2 = 1.0 —
        the reversed (off-by-one) weighting would give 0.5."""
        run = _FakeRun([0.0, 1.0, 3.0], [0.0, 0.5, 0.0])
        assert qos_loss_seconds(run) == pytest.approx(1.0)

    def test_single_or_empty_run_integrates_zero(self):
        assert qos_loss_seconds(_FakeRun([], [])) == 0.0
        assert qos_loss_seconds(_FakeRun([2.0], [0.7])) == 0.0
