"""Parity tests for the resumable step() API against one-shot run().

The datacenter engine cooperatively schedules many live runtimes through
``begin``/``step``/``finish``; these tests pin down the contract that the
incremental path is *identical* to the monolithic ``run`` — same samples,
same outputs, same energy — including when events are injected mid-run.
"""

import pytest

from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import RuntimeEvent, StepStatus
from repro.hardware.machine import Machine
from tests.core.toyapp import ToyApp, toy_jobs


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ToyApp, toy_jobs())


def fresh_runtime(system):
    machine = Machine()
    target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
    return system.runtime(machine, target_rate=target)


def jobs():
    return toy_jobs(count=2, items=120, seed=3)


def cap_event(at_beat=60):
    return RuntimeEvent(
        at_beat=at_beat, action=lambda m: m.set_frequency(1.6), label="cap"
    )


class TestRunStepEquivalence:
    def test_run_equals_iterated_step(self, system):
        reference = fresh_runtime(system).run(jobs())

        runtime = fresh_runtime(system)
        runtime.begin(jobs())
        runtime.close_input()
        statuses = []
        while (status := runtime.step()) is not StepStatus.FINISHED:
            statuses.append(status)
        stepped = runtime.finish()

        assert stepped == reference
        # With input closed up front the runtime is never starved.
        assert all(s is StepStatus.RAN for s in statuses)

    def test_run_equals_iterated_step_with_events(self, system):
        reference = fresh_runtime(system).run(jobs(), events=[cap_event()])

        runtime = fresh_runtime(system)
        runtime.begin(jobs(), events=[cap_event()])
        runtime.close_input()
        while runtime.step() is not StepStatus.FINISHED:
            pass
        assert runtime.finish() == reference

    def test_each_step_advances_about_one_quantum(self, system):
        runtime = fresh_runtime(system)
        quantum = runtime.actuator.quantum_beats / runtime.target_rate
        runtime.begin(jobs())
        runtime.close_input()
        last = runtime.machine.now
        while runtime.step() is StepStatus.RAN:
            advance = runtime.machine.now - last
            last = runtime.machine.now
            # One quantum, plus at most one item of overshoot.
            assert advance == pytest.approx(quantum, rel=0.5)

    def test_finish_before_drain_is_an_error(self, system):
        runtime = fresh_runtime(system)
        runtime.begin(jobs())
        runtime.step()
        with pytest.raises(RuntimeError):
            runtime.finish()

    def test_step_before_begin_is_an_error(self, system):
        runtime = fresh_runtime(system)
        with pytest.raises(RuntimeError):
            runtime.step()


class TestMidRunInjection:
    def test_mid_run_inject_matches_run_with_events(self, system):
        """Injecting a future event between steps ≡ passing it to run()."""
        reference = fresh_runtime(system).run(jobs(), events=[cap_event(60)])

        runtime = fresh_runtime(system)
        runtime.begin(jobs())
        runtime.close_input()
        # Two quanta ≈ 40 beats: safely before the event's beat.
        runtime.step()
        runtime.step()
        assert runtime.monitor.count < 60
        runtime.inject(cap_event(60))
        while runtime.step() is not StepStatus.FINISHED:
            pass
        assert runtime.finish() == reference

    def test_past_beat_injection_fires_before_next_item(self, system):
        runtime = fresh_runtime(system)
        runtime.begin(jobs())
        runtime.close_input()
        runtime.step()
        fired_at = []
        runtime.inject(
            RuntimeEvent(
                at_beat=0,
                action=lambda m: fired_at.append(runtime.monitor.count),
                label="probe",
            )
        )
        runtime.step()
        assert fired_at, "past-due event did not fire"
        # Dispatched before the step's first processed item.
        assert fired_at[0] <= runtime.monitor.count - 1


class TestFeedAndStarvation:
    def test_starved_then_fed_run_completes(self, system):
        runtime = fresh_runtime(system)
        runtime.begin()
        assert runtime.step() is StepStatus.STARVED
        job = toy_jobs(count=1, items=40, seed=9)[0]
        completions = []
        runtime.feed(job, on_complete=completions.append)
        runtime.close_input()
        while runtime.step() is not StepStatus.FINISHED:
            pass
        result = runtime.finish()
        assert len(result.outputs_by_job) == 1
        assert len(result.outputs_by_job[0]) == len(job)
        assert completions == [pytest.approx(runtime.machine.now)]

    def test_starved_step_does_not_advance_clock(self, system):
        runtime = fresh_runtime(system)
        runtime.begin()
        before = runtime.machine.now
        assert runtime.step() is StepStatus.STARVED
        assert runtime.machine.now == before

    def test_feed_after_close_rejected(self, system):
        runtime = fresh_runtime(system)
        runtime.begin()
        runtime.close_input()
        with pytest.raises(RuntimeError):
            runtime.feed(toy_jobs(count=1)[0])

    def test_pending_jobs_counts_queue(self, system):
        runtime = fresh_runtime(system)
        runtime.begin()
        assert runtime.pending_jobs == 0
        runtime.feed(toy_jobs(count=1, items=10)[0])
        runtime.feed(toy_jobs(count=1, items=10)[0])
        assert runtime.pending_jobs == 2


class TestPlanCache:
    """_plan_for reuses the last plan while the command is unchanged."""

    def test_repeated_command_returns_same_plan_object(self, system):
        runtime = fresh_runtime(system)
        top = runtime.table.max_speedup
        blended = 0.5 * (1.0 + top)
        first = runtime._plan_for(blended)
        assert runtime._plan_for(blended) is first

    def test_cached_plan_matches_fresh_actuator_plan(self, system):
        runtime = fresh_runtime(system)
        for speedup in (1.0, 0.5 * (1.0 + runtime.table.max_speedup), 1.0):
            cached = runtime._plan_for(speedup)
            assert cached == runtime.actuator.plan(speedup)

    def test_changed_command_replans(self, system):
        runtime = fresh_runtime(system)
        top = runtime.table.max_speedup
        first = runtime._plan_for(1.0)
        second = runtime._plan_for(top)
        assert second is not first
        assert second.achieved_speedup == pytest.approx(top)
