"""A tiny deterministic application used throughout the core tests.

``ToyApp`` models a Monte-Carlo-style computation: one knob ``n`` controls
how many inner iterations each item runs.  Work is exactly ``n`` units per
item, and the output converges toward the item's true value as ``n`` grows
(error shrinks like 1/n), so the speedup/QoS trade-off is perfectly
predictable: setting ``n`` to ``N_MAX / s`` yields speedup ``s``.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, ItemResult
from repro.core.knobs import Parameter
from repro.core.qos import DistortionMetric, QoSMetric

N_MAX = 800
N_VALUES = (50, 100, 200, 400, N_MAX)

# Work units per inner iteration.  Sized so one item at the default knob
# takes ~40 ms of virtual time on the 8-core reference machine, giving the
# 1 Hz power meter plenty of samples over a few-hundred-item run.
WORK_SCALE = 1.0e6


class ToyApp(Application):
    """Estimates item values with a knob-controlled iteration count."""

    name = "toy"

    @classmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        return (Parameter("n", N_VALUES, default=N_MAX),)

    def initialize(self, config, space) -> None:
        space.write("iterations", config["n"] * 1)
        space.write("half_iterations", config["n"] // 2)

    def prepare(self, job):
        # A job is a list of target float values.
        return list(job)

    def process_item(self, item, space, tracker) -> ItemResult:
        iterations = int(space.read("iterations"))
        _ = space.read("half_iterations")
        work = float(iterations) * WORK_SCALE
        tracker.add("main", work)
        # Deterministic 1/n convergence toward the true value.
        estimate = item * (1.0 + 1.0 / iterations)
        return ItemResult(output=estimate, work=work)

    def batch_process(self, items, space, tracker):
        """Vectorized twin of :meth:`process_item` for the batched kernel.

        Same contract as ``ServiceApp.batch_process``: outputs must be
        float-for-float equal to per-item calls under a fixed knob
        configuration, and per-item work is one constant for the batch.
        """
        iterations = int(space.read("iterations"))
        _ = space.read("half_iterations")
        work = float(iterations) * WORK_SCALE
        tracker.add("main", work * len(items))
        outputs = np.asarray(items, dtype=float) * (1.0 + 1.0 / iterations)
        return outputs, work

    def qos_metric(self) -> QoSMetric:
        return DistortionMetric(lambda outputs: np.asarray(outputs, dtype=float))

    def threads(self) -> int:
        return 8


def toy_jobs(count: int = 3, items: int = 6, seed: int = 7):
    """Deterministic toy jobs: lists of positive floats."""
    rng = np.random.default_rng(seed)
    return [list(rng.uniform(1.0, 10.0, size=items)) for _ in range(count)]
