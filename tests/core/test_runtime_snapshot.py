"""Warm-handoff tests: snapshot()/restore() round-trips a live runtime.

The live-migration contract: a run split at an arbitrary step boundary
— pending jobs extracted, in-flight work drained, warm state captured
with ``snapshot()`` and replayed with ``restore()`` into a fresh
runtime on a clock-synchronized machine — produces *exactly* the
samples, outputs, and settings of the same run left unsplit.  That is
what makes a warm migration invisible to the control loop: the
destination's first control period continues the source's last.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import RuntimeSnapshot, StepStatus
from repro.hardware.machine import Machine
from tests.core.toyapp import ToyApp, toy_jobs


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ToyApp, toy_jobs())


def fresh_runtime(system, frequency_ghz=None):
    machine = Machine()
    # Target measured at the default frequency; a cap applied *after*
    # leaves the controller a deficit to work off (speedup > 1).
    target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
    if frequency_ghz is not None:
        machine.set_frequency(frequency_ghz)
    return system.runtime(machine, target_rate=target)


def drain(runtime):
    while runtime.step() is not StepStatus.FINISHED:
        pass
    return runtime.finish()


def handoff(source, system, capped=False):
    """Extract + drain + snapshot the source; restore into a fresh twin."""
    pending = source.extract_pending()
    source.close_input()
    first_segment = drain(source)
    snap = source.snapshot()

    dest = fresh_runtime(system)
    if capped:
        dest.machine.set_frequency(1.6)
    dest.machine.idle_until(source.machine.now)
    dest.begin()
    dest.restore(snap)
    for job, tag in pending:
        dest.feed(job, tag=tag)
    dest.close_input()
    return first_segment, drain(dest)


class TestRoundTrip:
    @settings(max_examples=12, deadline=None)
    @given(
        items=st.lists(st.integers(20, 60), min_size=2, max_size=4),
        split_steps=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_split_run_equals_unsplit_run(
        self, system, items, split_steps, seed
    ):
        """Property: restore(snapshot()) is exact at any step boundary."""
        jobs = [
            job[:count]
            for job, count in zip(toy_jobs(len(items), max(items), seed), items)
        ]
        reference = fresh_runtime(system).run(jobs)

        source = fresh_runtime(system)
        source.begin()
        for job in jobs:
            source.feed(job)
        for _ in range(split_steps):
            source.step()
        first, second = handoff(source, system)

        assert first.samples + second.samples == reference.samples
        assert (
            first.outputs_by_job + second.outputs_by_job
            == reference.outputs_by_job
        )
        assert (
            first.settings_used + second.settings_used
            == reference.settings_used
        )
        # Energy is deliberately not compared: RunResult.energy_joules
        # reads the whole machine meter (calibration + idle included);
        # per-tenant energy attribution is the billing layer's contract.

    def test_round_trip_exact_under_power_cap(self, system):
        """The handoff also round-trips a capped (speedup > 1) regime."""
        jobs = toy_jobs(count=3, items=60, seed=11)

        capped_reference = fresh_runtime(system, frequency_ghz=1.6)
        reference = capped_reference.run(jobs)
        assert reference.samples[-1].commanded_speedup > 1.0

        source = fresh_runtime(system, frequency_ghz=1.6)
        source.begin()
        for job in jobs:
            source.feed(job)
        source.step()
        source.step()
        first, second = handoff(source, system, capped=True)
        assert first.samples + second.samples == reference.samples


class TestWarmState:
    def test_snapshot_carries_elevated_operating_point(self, system):
        """A capped source's learned speedup survives the handoff."""
        source = fresh_runtime(system, frequency_ghz=1.6)
        source.begin()
        for job in toy_jobs(count=3, items=80, seed=5):
            source.feed(job)
        for _ in range(4):
            source.step()
        assert source.controller.speedup > 1.0
        snap = source.snapshot()
        assert snap.controller_state == (
            source.controller.speedup,
            source.controller.last_error,
        )

        dest = fresh_runtime(system)
        dest.machine.idle_until(source.machine.now)
        dest.begin()
        assert dest.controller.speedup == 1.0
        dest.restore(snap)
        assert dest.controller.speedup == source.controller.speedup
        assert dest.monitor.count == source.monitor.count

    def test_resnapshot_before_first_step_carries_the_restored_phase(
        self, system
    ):
        """An instant re-migration (restore, then snapshot with no step
        in between) must ship the carried quantum phase, not a fresh
        one."""
        source = fresh_runtime(system)
        source.begin()
        for job in toy_jobs(count=2, items=60, seed=21):
            source.feed(job)
        source.step()
        source.close_input()
        drain(source)
        snap = source.snapshot()
        assert snap.beats_in_quantum > 0 or snap.quantum_start > 0.0

        relay = fresh_runtime(system)
        relay.machine.idle_until(source.machine.now)
        relay.begin()
        relay.restore(snap)
        relayed = relay.snapshot()
        assert relayed.beats_in_quantum == snap.beats_in_quantum
        assert relayed.quantum_start == snap.quantum_start

    def test_snapshot_is_plain_picklable_data(self, system):
        """Snapshots ship across shard-worker pipes, so they must pickle."""
        source = fresh_runtime(system)
        source.begin()
        source.feed(toy_jobs()[0])
        source.step()
        snap = source.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert isinstance(clone, RuntimeSnapshot)

    def test_restore_skips_stale_last_beat_on_a_lagging_clock(self, system):
        """A destination clock behind the source (migration drains run
        past the barrier) must not see time run backwards."""
        source = fresh_runtime(system)
        source.begin()
        source.feed(toy_jobs()[0])
        source.step()
        snap = source.snapshot()

        dest = fresh_runtime(system)  # clock at 0, far behind the source
        dest.begin()
        dest.restore(snap)
        dest.feed(toy_jobs()[1])
        dest.close_input()
        segment = drain(dest)
        # Beat numbering continues from the source count.
        assert segment.samples[0].beat == snap.window.count


class TestApiGuards:
    def test_snapshot_before_begin_rejected(self, system):
        runtime = fresh_runtime(system)
        with pytest.raises(RuntimeError, match="begin"):
            runtime.snapshot()

    def test_restore_before_begin_rejected(self, system):
        source = fresh_runtime(system)
        source.begin()
        snap = source.snapshot()
        runtime = fresh_runtime(system)
        with pytest.raises(RuntimeError, match="begin"):
            runtime.restore(snap)

    def test_restore_after_beats_rejected(self, system):
        source = fresh_runtime(system)
        source.begin()
        source.feed(toy_jobs()[0])
        source.step()
        snap = source.snapshot()
        runtime = fresh_runtime(system)
        runtime.begin()
        runtime.feed(toy_jobs()[0])
        runtime.step()
        with pytest.raises(RuntimeError, match="fresh"):
            runtime.restore(snap)

    def test_controller_without_state_support_rejected(self, system):
        class OpaqueController:
            speedup = 1.0

            def update(self, rate):
                return 1.0

            def reset(self):
                pass

        machine = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        runtime = system.runtime(
            machine, target_rate=target, controller=OpaqueController()
        )
        runtime.begin()
        with pytest.raises(RuntimeError, match="export_state"):
            runtime.snapshot()
