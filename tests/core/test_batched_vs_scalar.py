"""Differential fuzz harness: the batched step kernel vs the scalar reference.

The scalar ``PowerDialRuntime`` is the reference semantics; the batched
kernel (``repro.core.batched``) must be *bit-equal* to it — same samples,
same outputs, same settings, same energy, same controller and window
state — under hypothesis-generated configurations, heartbeat traces,
frequency-cap sequences, and mid-run snapshot/restore.  Every assertion
here is exact equality, never approximate: one ULP of drift is a bug.

The batched building blocks (``HeartbeatMonitor.commit_run``,
``Machine.execute_run``, ``batched_controller_update``,
``batched_plan_parameters``) are also pinned individually against their
scalar twins, so a divergence localizes to a component before it shows
up as a full-run mismatch.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.actuator import ActuationPolicy, Actuator
from repro.core.batched import (
    BatchedServiceRuntime,
    batched_controller_update,
    batched_plan_parameters,
    to_batched,
)
from repro.core.controller import ControllerError, HeartRateController
from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import PowerDialRuntime, RuntimeEvent, StepStatus
from repro.hardware.clock import VirtualClock
from repro.hardware.machine import Machine, MachineError
from repro.heartbeats.api import HeartbeatError, HeartbeatMonitor
from tests.core.toyapp import ToyApp, toy_jobs

FREQUENCIES = (2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6)

POLICIES = (ActuationPolicy.MINIMAL_SPEEDUP, ActuationPolicy.RACE_TO_IDLE)


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ToyApp, toy_jobs())


def fresh_runtime(system, policy=ActuationPolicy.MINIMAL_SPEEDUP):
    machine = Machine()
    target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
    return PowerDialRuntime(
        app=ToyApp(),
        table=system.table,
        machine=machine,
        target_rate=target,
        policy=policy,
    )


def cap_events(caps):
    return [
        RuntimeEvent(
            at_beat=beat,
            action=lambda m, f=freq: m.set_frequency(f),
            label=f"cap-{index}",
        )
        for index, (beat, freq) in enumerate(caps)
    ]


def assert_state_equal(scalar, batched):
    """Every host-visible piece of runtime state, bit for bit."""
    assert batched.machine.now == scalar.machine.now
    assert (
        batched.machine.meter.energy_joules.hex()
        == scalar.machine.meter.energy_joules.hex()
    )
    assert batched.machine.meter.samples == scalar.machine.meter.samples
    assert batched.monitor.count == scalar.monitor.count
    assert batched.monitor.export_window() == scalar.monitor.export_window()
    assert batched.controller.export_state() == scalar.controller.export_state()
    assert batched._phase == scalar._phase
    assert batched.pending_jobs == scalar.pending_jobs


def assert_result_equal(scalar, batched):
    assert batched.samples == scalar.samples
    assert batched.outputs_by_job == scalar.outputs_by_job
    assert batched.settings_used == scalar.settings_used
    assert batched.mean_power == scalar.mean_power
    assert batched.energy_joules.hex() == scalar.energy_joules.hex()
    assert batched.elapsed == scalar.elapsed


def drain(runtime):
    statuses = []
    while (status := runtime.step()) is not StepStatus.FINISHED:
        statuses.append(status)
    return statuses


class TestFullRunDifferential:
    @given(
        seed=st.integers(0, 2**16),
        n_jobs=st.integers(1, 4),
        items=st.integers(1, 40),
        caps=st.lists(
            st.tuples(st.integers(0, 120), st.sampled_from(FREQUENCIES)),
            max_size=3,
        ),
        policy=st.sampled_from(POLICIES),
    )
    @settings(max_examples=15, deadline=None)
    def test_run_bit_equal(self, system, seed, n_jobs, items, caps, policy):
        """Arbitrary jobs + cap events: every artifact identical."""
        jobs = toy_jobs(count=n_jobs, items=items, seed=seed)
        runs = {}
        for kind in ("scalar", "batched"):
            runtime = fresh_runtime(system, policy)
            if kind == "batched":
                runtime = to_batched(runtime)
                assert isinstance(runtime, BatchedServiceRuntime)
            runtime.begin(jobs, cap_events(caps))
            runtime.close_input()
            statuses = drain(runtime)
            runs[kind] = (runtime, runtime.finish(), statuses)
        assert runs["batched"][2] == runs["scalar"][2]
        assert_result_equal(runs["scalar"][1], runs["batched"][1])
        assert_state_equal(runs["scalar"][0], runs["batched"][0])

    def test_starved_feed_with_external_caps(self, system):
        """Staggered feeding, starvation idles, and caps between steps."""
        stream_jobs = toy_jobs(count=12, items=9, seed=5)
        runs = {}
        for kind in ("scalar", "batched"):
            runtime = fresh_runtime(system)
            if kind == "batched":
                runtime = to_batched(runtime)
            runtime.begin()
            completions = []
            fed = 0
            statuses = []
            tick = 0
            while True:
                if fed < len(stream_jobs) and tick % 3 == 0:
                    runtime.feed(
                        stream_jobs[fed],
                        on_complete=lambda t, k=fed: completions.append((k, t)),
                        tag=("job", fed),
                    )
                    fed += 1
                if tick == 7:
                    runtime.machine.set_frequency(1.6)
                if tick == 13:
                    runtime.machine.set_frequency(2.4)
                status = runtime.step()
                statuses.append(status)
                if status is StepStatus.STARVED:
                    runtime.machine.idle(0.25)
                    if fed >= len(stream_jobs):
                        runtime.close_input()
                if status is StepStatus.FINISHED:
                    break
                tick += 1
            runs[kind] = (runtime, runtime.finish(), statuses, completions)
        assert runs["batched"][2] == runs["scalar"][2]
        assert runs["batched"][3] == runs["scalar"][3]
        assert_result_equal(runs["scalar"][1], runs["batched"][1])
        assert_state_equal(runs["scalar"][0], runs["batched"][0])


class TestSnapshotRestoreDifferential:
    @given(
        seed=st.integers(0, 2**16),
        snap_after=st.integers(0, 6),
        policy=st.sampled_from(POLICIES),
    )
    @settings(max_examples=10, deadline=None)
    def test_migration_bit_equal(self, system, seed, snap_after, policy):
        """Snapshot mid-run, migrate to a fresh machine, drain: identical."""
        jobs = toy_jobs(count=3, items=20, seed=seed)
        runs = {}
        for kind in ("scalar", "batched"):
            source = fresh_runtime(system, policy)
            if kind == "batched":
                source = to_batched(source)
            source.begin(jobs)
            for _ in range(snap_after):
                source.step()
            snapshot = source.snapshot()
            moved = source.extract_pending()
            destination = fresh_runtime(system, policy)
            if kind == "batched":
                destination = to_batched(destination)
            destination.begin()
            destination.restore(snapshot)
            for job, _tag in moved:
                destination.feed(job)
            destination.close_input()
            statuses = drain(destination)
            runs[kind] = (destination, destination.finish(), statuses)
        assert runs["batched"][2] == runs["scalar"][2]
        assert_result_equal(runs["scalar"][1], runs["batched"][1])
        assert_state_equal(runs["scalar"][0], runs["batched"][0])

    def test_scalar_snapshot_restores_into_batched(self, system):
        """Warm handoff across kernels: a scalar snapshot resumed on the
        batched runtime finishes identically to a scalar resume."""
        jobs = toy_jobs(count=3, items=20, seed=11)
        source = fresh_runtime(system)
        source.begin(jobs)
        for _ in range(4):
            source.step()
        snapshot = source.snapshot()
        moved = source.extract_pending()
        runs = {}
        for kind in ("scalar", "batched"):
            destination = fresh_runtime(system)
            if kind == "batched":
                destination = to_batched(destination)
            destination.begin()
            destination.restore(snapshot)
            for job, _tag in moved:
                destination.feed(job)
            destination.close_input()
            drain(destination)
            runs[kind] = (destination, destination.finish())
        assert_result_equal(runs["scalar"][1], runs["batched"][1])
        assert_state_equal(runs["scalar"][0], runs["batched"][0])


class TestToBatched:
    def test_noop_without_batch_hook(self, system):
        """Apps without batch_process keep the scalar runtime."""

        class NoBulk(ToyApp):
            batch_process = None

        machine = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        runtime = PowerDialRuntime(
            app=NoBulk(), table=system.table, machine=machine,
            target_rate=target,
        )
        assert to_batched(runtime) is runtime

    def test_noop_for_runtime_subclasses(self, system):
        class Custom(PowerDialRuntime):
            pass

        machine = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        runtime = Custom(
            app=ToyApp(), table=system.table, machine=machine,
            target_rate=target,
        )
        assert to_batched(runtime) is runtime

    def test_idempotent(self, system):
        runtime = to_batched(fresh_runtime(system))
        assert to_batched(runtime) is runtime

    def test_rejects_begun_runtime(self, system):
        runtime = fresh_runtime(system)
        runtime.begin(toy_jobs())
        with pytest.raises(RuntimeError):
            to_batched(runtime)


def committed_reference(window_size, warmup, timestamps):
    """Scalar reference: per-beat heartbeat() + window_rate() queries."""
    clock = VirtualClock()
    monitor = HeartbeatMonitor(clock, window_size=window_size)
    for t in warmup:
        clock.advance_to(t)
        monitor.heartbeat()
    rates = []
    for t in timestamps:
        clock.advance_to(t)
        monitor.heartbeat()
        rates.append(monitor.window_rate())
    return monitor, rates


def committed_bulk(window_size, warmup, timestamps):
    """The batched path: one commit_run call over the same trace."""
    clock = VirtualClock()
    monitor = HeartbeatMonitor(clock, window_size=window_size)
    for t in warmup:
        clock.advance_to(t)
        monitor.heartbeat()
    first, rates = monitor.commit_run(np.asarray(timestamps, dtype=float))
    return monitor, first, rates


intervals = st.floats(
    min_value=1e-4, max_value=5.0, allow_nan=False, allow_infinity=False
)


class TestCommitRunDifferential:
    @given(
        window_size=st.integers(1, 20),
        warmup_gaps=st.lists(intervals, min_size=0, max_size=30),
        run_gaps=st.lists(intervals, min_size=1, max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_commit_run_matches_per_beat_loop(
        self, window_size, warmup_gaps, run_gaps
    ):
        """commit_run == the per-beat recurrence, for any warmup state.

        Draws cover both the filled-window vector fast path (warm
        monitor, n >= 8) and the scalar fallback loop (cold or short
        runs); the two must be indistinguishable.
        """
        times = []
        now = 0.0
        for gap in warmup_gaps + run_gaps:
            now += gap
            times.append(now)
        warmup = times[: len(warmup_gaps)]
        run = times[len(warmup_gaps):]
        reference, ref_rates = committed_reference(window_size, warmup, run)
        bulk, first, bulk_rates = committed_bulk(window_size, warmup, run)
        assert first == len(warmup)
        assert bulk_rates == ref_rates
        assert bulk.count == reference.count
        assert bulk.export_window() == reference.export_window()
        assert bulk.window_rate() == reference.window_rate()

    def test_zero_intervals_fall_back_to_none_rates(self):
        """A window full of zero-width intervals bails the vector path."""
        warmup = [0.0, 1.0, 2.0, 3.0]
        run = [3.0] * 12  # zero intervals push the window sum to zero
        reference, ref_rates = committed_reference(3, warmup, run)
        bulk, first, bulk_rates = committed_bulk(3, warmup, run)
        assert bulk_rates == ref_rates
        assert any(rate is None for rate in bulk_rates)
        assert bulk.export_window() == reference.export_window()

    def test_backwards_run_raises_before_mutating(self):
        """The vector path validates the whole run before touching state."""
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=4)
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            clock.advance_to(t)
            monitor.heartbeat()
        before = (monitor.count, monitor.export_window())
        bad = np.asarray([5.0, 6.0, 5.5, 7.0, 8.0, 9.0, 10.0, 11.0])
        with pytest.raises(HeartbeatError):
            monitor.commit_run(bad)
        assert (monitor.count, monitor.export_window()) == before

    def test_empty_run_is_a_noop(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=4)
        monitor.heartbeat()
        assert monitor.commit_run([]) == (monitor.count, [])


class TestExecuteRunDifferential:
    def test_matches_per_call_execute_chain(self):
        serial = Machine()
        batched = Machine()
        for _ in range(10):
            serial.execute(3.0e8, threads=8)
        times = batched.execute_run(10, 3.0e8, threads=8)
        assert times.shape == (11,)
        assert batched.now == serial.now
        assert (
            batched.meter.energy_joules.hex()
            == serial.meter.energy_joules.hex()
        )
        assert batched.meter.samples == serial.meter.samples

    def test_precomputed_times_are_trusted(self):
        reference = Machine()
        chain = reference.execute_run(6, 2.0e8)
        machine = Machine()
        times = machine.execute_run(6, 2.0e8, times=chain.copy())
        assert times.tolist() == chain.tolist()
        assert machine.now == reference.now
        assert machine.meter.samples == reference.meter.samples

    def test_rejects_malformed_times(self):
        machine = Machine()
        with pytest.raises(MachineError):
            machine.execute_run(3, 1.0e8, times=np.zeros(3))  # wrong length
        with pytest.raises(MachineError):
            machine.execute_run(
                3, 1.0e8, times=np.asarray([1.0, 2.0, 3.0, 4.0])
            )  # first entry is not the current clock

    def test_rejects_nonpositive_count(self):
        with pytest.raises(MachineError):
            Machine().execute_run(0, 1.0e8)


positive_rates = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestBatchedControllerUpdate:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=50.0),  # state s(t)
                st.floats(min_value=0.0, max_value=100.0),  # heart rate h
                positive_rates,  # target g
                positive_rates,  # baseline b
            ),
            min_size=1,
            max_size=32,
        ),
        min_speedup=st.floats(min_value=0.1, max_value=1.0),
        max_speedup=st.floats(min_value=2.0, max_value=100.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_controllers(self, data, min_speedup, max_speedup):
        """N lockstep loops == N independent scalar Eq. 9–11 updates."""
        # Integrator states live in [min_speedup, max_speedup] (restore
        # clamps anything else); draw inside the valid region.
        data = [
            (min(max(row[0], min_speedup), max_speedup), *row[1:])
            for row in data
        ]
        states = np.asarray([row[0] for row in data])
        rates = np.asarray([row[1] for row in data])
        targets = np.asarray([row[2] for row in data])
        baselines = np.asarray([row[3] for row in data])
        expected_speedups = []
        expected_errors = []
        for state, rate, target, baseline in data:
            controller = HeartRateController(
                target,
                baseline,
                min_speedup=min_speedup,
                max_speedup=max_speedup,
            )
            controller.restore_state((state, 0.0))
            expected_speedups.append(controller.update(rate))
            expected_errors.append(controller.last_error)
        speedups, errors = batched_controller_update(
            states, rates, targets, baselines, min_speedup, max_speedup
        )
        assert speedups.tolist() == expected_speedups
        assert errors.tolist() == expected_errors

    def test_rejects_negative_heart_rates(self):
        with pytest.raises(ControllerError):
            batched_controller_update(
                np.ones(2), np.asarray([1.0, -0.5]), 1.0, 1.0, 1.0
            )


class TestBatchedPlanParameters:
    @given(
        speedups=st.lists(
            st.floats(min_value=0.05, max_value=8.0), min_size=1, max_size=32
        ),
        tolerance=st.sampled_from([0.0, 0.02, 0.05]),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_actuator_plans(self, system, speedups, tolerance):
        """(setting, fraction) per command == the scalar plan's anchor."""
        actuator = Actuator(
            system.table, selection_tolerance=tolerance
        )
        settings_list = list(system.table.settings)
        indices, fractions = batched_plan_parameters(
            system.table, np.asarray(speedups), selection_tolerance=tolerance
        )
        for command, index, fraction in zip(speedups, indices, fractions):
            plan = actuator.plan(command)
            anchor = plan.segments[0]
            assert settings_list[index] == anchor.setting
            if len(plan.segments) == 1:
                assert fraction == 1.0
            else:
                assert fraction == anchor.fraction

    def test_rejects_nonpositive_speedups(self, system):
        with pytest.raises(ValueError):
            batched_plan_parameters(system.table, np.asarray([1.0, 0.0]))
