"""Tests for the actuation policy (Equations 9-11)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from scipy.optimize import linprog

from repro.core.actuator import (
    ActuationPolicy,
    Actuator,
    ActuatorError,
    PlanSegment,
    ActuationPlan,
)
from repro.core.knobs import KnobConfiguration, KnobSetting, KnobTable


def table_from(points):
    return KnobTable(
        [
            KnobSetting(KnobConfiguration({"k": i}), speedup=s, qos_loss=q)
            for i, (s, q) in enumerate(points)
        ]
    )


STANDARD = table_from([(1.0, 0.0), (2.0, 0.02), (4.0, 0.08), (8.0, 0.3)])


def plan_average_speedup(plan):
    return sum(seg.fraction * seg.speedup for seg in plan.segments)


class TestMinimalSpeedupPolicy:
    def test_exact_setting_runs_whole_quantum(self):
        plan = Actuator(STANDARD).plan(2.0)
        assert len(plan.segments) == 1
        assert plan.segments[0].setting.speedup == 2.0

    def test_blends_min_sufficient_with_default(self):
        """Paper example: need 1.5, smallest knob is 2 -> half at 2, half
        at default 1."""
        plan = Actuator(STANDARD).plan(1.5)
        speeds = sorted(seg.speedup for seg in plan.segments)
        assert speeds == [1.0, 2.0]
        assert plan_average_speedup(plan) == pytest.approx(1.5)
        fractions = {seg.speedup: seg.fraction for seg in plan.segments}
        assert fractions[2.0] == pytest.approx(0.5)

    def test_below_baseline_runs_default(self):
        plan = Actuator(STANDARD).plan(0.5)
        assert len(plan.segments) == 1
        assert plan.segments[0].setting.speedup == 1.0

    def test_saturates_at_fastest(self):
        plan = Actuator(STANDARD).plan(100.0)
        assert plan.segments[0].setting.speedup == 8.0
        assert plan.achieved_speedup == 8.0

    def test_uses_minimal_sufficient_not_fastest(self):
        plan = Actuator(STANDARD).plan(3.0)
        speeds = {seg.speedup for seg in plan.segments}
        assert speeds == {1.0, 4.0}

    def test_no_idle_under_minimal_speedup(self):
        plan = Actuator(STANDARD).plan(3.0)
        assert plan.idle_fraction() == 0.0

    @given(speedup=st.floats(min_value=1.0, max_value=7.99))
    def test_average_speedup_matches_command(self, speedup):
        """Equation 9 holds for every feasible command."""
        plan = Actuator(STANDARD).plan(speedup)
        assert plan_average_speedup(plan) == pytest.approx(speedup, rel=1e-9)

    @given(speedup=st.floats(min_value=1.0, max_value=7.99))
    def test_fractions_satisfy_constraints(self, speedup):
        """Equations 10-11: fractions in [0,1], summing to 1."""
        plan = Actuator(STANDARD).plan(speedup)
        total = sum(seg.fraction for seg in plan.segments)
        assert total == pytest.approx(1.0)
        assert all(0 < seg.fraction <= 1 for seg in plan.segments)

    @given(speedup=st.floats(min_value=1.01, max_value=7.99))
    def test_minimal_policy_no_worse_than_pure_smin(self, speedup):
        """Blending s_min with the default never loses to running s_min for
        the whole quantum (the naive discretization)."""
        plan = Actuator(STANDARD).plan(speedup)
        s_min_setting = STANDARD.minimal_speedup_at_least(speedup)
        assert plan.expected_qos_loss() <= s_min_setting.qos_loss + 1e-12


class TestOptimalQosPolicy:
    """The LP extension policy (beyond the paper's two solutions)."""

    @given(speedup=st.floats(min_value=1.01, max_value=7.99))
    def test_matches_reference_linprog(self, speedup):
        """The policy's work-weighted QoS cost equals an independent LP."""
        speeds = np.array([s.speedup for s in STANDARD])
        losses = np.array([s.qos_loss for s in STANDARD])
        reference = linprog(
            c=losses * speeds,
            A_eq=np.vstack([speeds, np.ones_like(speeds)]),
            b_eq=np.array([speedup, 1.0]),
            bounds=[(0, 1)] * len(speeds),
            method="highs",
        )
        assert reference.success
        plan = Actuator(STANDARD, policy=ActuationPolicy.OPTIMAL_QOS).plan(speedup)
        plan_cost = sum(
            seg.fraction * seg.speedup * seg.setting.qos_loss
            for seg in plan.segments
        )
        assert plan_cost == pytest.approx(reference.fun, abs=1e-9)

    @given(speedup=st.floats(min_value=1.01, max_value=7.99))
    def test_never_worse_than_minimal_speedup_policy(self, speedup):
        optimal = Actuator(STANDARD, policy=ActuationPolicy.OPTIMAL_QOS).plan(speedup)
        minimal = Actuator(STANDARD).plan(speedup)
        assert (
            optimal.expected_qos_loss() <= minimal.expected_qos_loss() + 1e-9
        )

    @given(speedup=st.floats(min_value=1.0, max_value=7.99))
    def test_average_speedup_matches_command(self, speedup):
        plan = Actuator(STANDARD, policy=ActuationPolicy.OPTIMAL_QOS).plan(speedup)
        assert plan_average_speedup(plan) == pytest.approx(speedup, rel=1e-6)

    def test_can_beat_paper_policy_on_nonconvex_frontier(self):
        """At s=3 on the STANDARD table the LP blends 2x and 4x (cost 0.18
        work-weighted) where the paper's policy blends 4x with the default
        (cost 0.213...) — the documented gap."""
        optimal = Actuator(STANDARD, policy=ActuationPolicy.OPTIMAL_QOS).plan(3.0)
        minimal = Actuator(STANDARD).plan(3.0)

        def cost(plan):
            return sum(
                seg.fraction * seg.speedup * seg.setting.qos_loss
                for seg in plan.segments
            )

        assert cost(optimal) == pytest.approx(0.18)
        assert cost(minimal) == pytest.approx(0.64 / 3)
        assert cost(optimal) < cost(minimal)


class TestRaceToIdlePolicy:
    def test_runs_fastest_then_idles(self):
        plan = Actuator(STANDARD, policy=ActuationPolicy.RACE_TO_IDLE).plan(2.0)
        assert plan.segments[0].setting.speedup == 8.0
        assert plan.segments[0].fraction == pytest.approx(2.0 / 8.0)
        assert plan.segments[1].is_idle
        assert plan.idle_fraction() == pytest.approx(0.75)

    def test_no_idle_when_command_equals_max(self):
        plan = Actuator(STANDARD, policy=ActuationPolicy.RACE_TO_IDLE).plan(8.0)
        assert len(plan.segments) == 1
        assert plan.idle_fraction() == 0.0

    @given(speedup=st.floats(min_value=1.0, max_value=7.99))
    def test_work_delivered_matches_command(self, speedup):
        """Running s_max for t_max delivers the commanded average speedup."""
        plan = Actuator(STANDARD, policy=ActuationPolicy.RACE_TO_IDLE).plan(speedup)
        assert plan_average_speedup(plan) == pytest.approx(speedup, rel=1e-9)


class TestPlanMechanics:
    def test_setting_at_walks_segments(self):
        plan = Actuator(STANDARD).plan(1.5)
        assert plan.setting_at(0.0).speedup == 2.0
        assert plan.setting_at(0.49).speedup == 2.0
        assert plan.setting_at(0.51).speedup == 1.0
        assert plan.setting_at(0.999).speedup == 1.0

    def test_setting_at_range_checked(self):
        plan = Actuator(STANDARD).plan(1.5)
        with pytest.raises(ActuatorError):
            plan.setting_at(1.5)
        with pytest.raises(ActuatorError):
            plan.setting_at(-0.1)

    def test_expected_qos_loss_is_work_weighted(self):
        plan = Actuator(STANDARD).plan(1.5)
        # Half time at speedup 2 (loss .02) produces 2 units; half at 1
        # produces 1 unit -> (2*.02 + 1*0)/3.
        assert plan.expected_qos_loss() == pytest.approx(2 * 0.02 / 3)

    def test_all_idle_plan_rejected(self):
        with pytest.raises(ActuatorError):
            ActuationPlan(
                segments=(PlanSegment(None, 1.0),),
                commanded_speedup=1.0,
                achieved_speedup=0.0,
            ).expected_qos_loss()

    def test_fraction_sum_validated(self):
        setting = STANDARD.baseline
        with pytest.raises(ActuatorError):
            ActuationPlan(
                segments=(PlanSegment(setting, 0.5),),
                commanded_speedup=1.0,
                achieved_speedup=1.0,
            )

    def test_invalid_commands_rejected(self):
        with pytest.raises(ActuatorError):
            Actuator(STANDARD).plan(0.0)
        with pytest.raises(ActuatorError):
            Actuator(STANDARD, quantum_beats=0)

    def test_quantum_default_is_twenty_beats(self):
        assert Actuator(STANDARD).quantum_beats == 20
