"""Unit and property tests for the knob data model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.knobs import (
    KnobConfiguration,
    KnobError,
    KnobSetting,
    KnobSpace,
    KnobTable,
    Parameter,
)


def make_table(points):
    """Helper: settings from (speedup, qos_loss) pairs keyed by index."""
    return KnobTable(
        [
            KnobSetting(KnobConfiguration({"k": i}), speedup=s, qos_loss=q)
            for i, (s, q) in enumerate(points)
        ]
    )


class TestParameter:
    def test_valid(self):
        p = Parameter("sm", (1, 2, 3), default=3)
        assert p.default == 3

    def test_default_must_be_in_values(self):
        with pytest.raises(KnobError):
            Parameter("sm", (1, 2), default=5)

    def test_duplicates_rejected(self):
        with pytest.raises(KnobError):
            Parameter("sm", (1, 1, 2), default=1)

    def test_empty_values_rejected(self):
        with pytest.raises(KnobError):
            Parameter("sm", (), default=None)

    def test_empty_name_rejected(self):
        with pytest.raises(KnobError):
            Parameter("", (1,), default=1)


class TestKnobConfiguration:
    def test_mapping_protocol(self):
        config = KnobConfiguration({"b": 2, "a": 1})
        assert config["a"] == 1
        assert dict(config) == {"a": 1, "b": 2}
        assert len(config) == 2

    def test_hash_and_equality_order_independent(self):
        c1 = KnobConfiguration({"a": 1, "b": 2})
        c2 = KnobConfiguration({"b": 2, "a": 1})
        assert c1 == c2 and hash(c1) == hash(c2)

    def test_equality_with_plain_mapping(self):
        assert KnobConfiguration({"a": 1}) == {"a": 1}

    def test_missing_key(self):
        with pytest.raises(KeyError):
            KnobConfiguration({"a": 1})["z"]

    def test_as_dict_is_mutable_copy(self):
        config = KnobConfiguration({"a": 1})
        d = config.as_dict()
        d["a"] = 9
        assert config["a"] == 1


class TestKnobSpace:
    def test_size_is_product_of_ranges(self):
        space = KnobSpace(
            (Parameter("a", (1, 2, 3), 3), Parameter("b", (10, 20), 20))
        )
        assert space.size == 6
        assert len(list(space.configurations())) == 6

    def test_default_configuration(self):
        space = KnobSpace((Parameter("a", (1, 2), 2),))
        assert space.default_configuration() == {"a": 2}

    def test_configurations_cover_all_combinations(self):
        space = KnobSpace(
            (Parameter("a", (1, 2), 2), Parameter("b", (10, 20), 20))
        )
        combos = {tuple(sorted(c.items())) for c in space.configurations()}
        assert combos == {
            (("a", 1), ("b", 10)),
            (("a", 1), ("b", 20)),
            (("a", 2), ("b", 10)),
            (("a", 2), ("b", 20)),
        }

    def test_configuration_builder_validates(self):
        space = KnobSpace((Parameter("a", (1, 2), 2),))
        assert space.configuration(a=1) == {"a": 1}
        with pytest.raises(KnobError):
            space.configuration(a=99)
        with pytest.raises(KnobError):
            space.configuration(a=1, z=2)
        with pytest.raises(KnobError):
            space.configuration()

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(KnobError):
            KnobSpace((Parameter("a", (1,), 1), Parameter("a", (2,), 2)))

    def test_empty_space_rejected(self):
        with pytest.raises(KnobError):
            KnobSpace(())


class TestKnobSetting:
    def test_dominates(self):
        better = KnobSetting(KnobConfiguration({"k": 1}), 2.0, 0.01)
        worse = KnobSetting(KnobConfiguration({"k": 2}), 1.5, 0.05)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = KnobSetting(KnobConfiguration({"k": 1}), 2.0, 0.01)
        b = KnobSetting(KnobConfiguration({"k": 2}), 2.0, 0.01)
        assert not a.dominates(b) and not b.dominates(a)

    def test_invalid_values_rejected(self):
        with pytest.raises(KnobError):
            KnobSetting(KnobConfiguration({"k": 1}), 0.0, 0.0)
        with pytest.raises(KnobError):
            KnobSetting(KnobConfiguration({"k": 1}), 1.0, -0.1)


class TestKnobTable:
    def test_sorted_by_speedup_with_baseline_first(self):
        table = make_table([(3.0, 0.1), (1.0, 0.0), (2.0, 0.05)])
        assert [s.speedup for s in table] == [1.0, 2.0, 3.0]
        assert table.baseline.speedup == 1.0
        assert table.fastest.speedup == 3.0
        assert table.max_speedup == 3.0

    def test_requires_baseline(self):
        with pytest.raises(KnobError):
            make_table([(2.0, 0.1), (3.0, 0.2)])

    def test_minimal_speedup_at_least(self):
        table = make_table([(1.0, 0.0), (2.0, 0.05), (4.0, 0.2)])
        assert table.minimal_speedup_at_least(1.5).speedup == 2.0
        assert table.minimal_speedup_at_least(2.0).speedup == 2.0
        assert table.minimal_speedup_at_least(2.1).speedup == 4.0
        with pytest.raises(KnobError):
            table.minimal_speedup_at_least(5.0)

    def test_pareto_frontier_drops_dominated(self):
        table = make_table([(1.0, 0.0), (2.0, 0.5), (2.5, 0.1), (3.0, 0.2)])
        frontier = table.pareto_frontier()
        speedups = [s.speedup for s in frontier]
        assert 2.0 not in speedups  # dominated by (2.5, 0.1)
        assert speedups == [1.0, 2.5, 3.0]

    def test_qos_cap_filters(self):
        table = make_table([(1.0, 0.0), (2.0, 0.04), (3.0, 0.2)])
        capped = table.with_qos_cap(0.05)
        assert [s.speedup for s in capped] == [1.0, 2.0]
        with pytest.raises(KnobError):
            table.with_qos_cap(-1.0)

    def test_empty_table_rejected(self):
        with pytest.raises(KnobError):
            KnobTable([])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_pareto_frontier_is_monotone(self, points):
        """On the frontier, more speedup must cost more QoS loss."""
        points = [(1.0, 0.0)] + points
        table = make_table(points)
        frontier = table.pareto_frontier()
        for earlier, later in zip(frontier, frontier[1:]):
            assert later.speedup >= earlier.speedup
            assert later.qos_loss >= earlier.qos_loss

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_no_frontier_point_is_dominated(self, points):
        points = [(1.0, 0.0)] + points
        table = make_table(points)
        frontier = table.pareto_frontier()
        for candidate in frontier:
            assert not any(
                other.dominates(candidate)
                for other in table
                if other is not candidate
            )
