"""Tests for the heart-rate controller and its Z-domain properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.controller import (
    ControllerError,
    HeartRateController,
    analyze_closed_loop,
    convergence_time,
)


def simulate(controller, baseline, steps, platform_scale=1.0):
    """Close the loop against the paper's model h(t+1) = b * s(t)."""
    rates = []
    speedup = controller.speedup
    for _ in range(steps):
        rate = baseline * platform_scale * speedup
        speedup = controller.update(rate)
        rates.append(rate)
    return rates


class TestControllerLaw:
    def test_integral_update_rule(self):
        """s(t) = s(t-1) + e(t)/b   (Equation 4)."""
        controller = HeartRateController(target_rate=10.0, baseline_rate=5.0)
        new = controller.update(8.0)
        assert new == pytest.approx(1.0 + (10.0 - 8.0) / 5.0)
        assert controller.last_error == pytest.approx(2.0)

    def test_on_target_leaves_speedup_unchanged(self):
        controller = HeartRateController(10.0, 10.0)
        controller.update(10.0)
        assert controller.speedup == 1.0

    def test_speedup_clamped_at_min(self):
        controller = HeartRateController(10.0, 10.0, min_speedup=1.0)
        controller.update(50.0)  # far above target -> would go below 1
        assert controller.speedup == 1.0

    def test_speedup_clamped_at_max(self):
        controller = HeartRateController(10.0, 10.0, max_speedup=3.0)
        for _ in range(20):
            controller.update(0.0)
        assert controller.speedup == 3.0

    def test_reset(self):
        controller = HeartRateController(10.0, 10.0)
        controller.update(2.0)
        controller.reset()
        assert controller.speedup == 1.0
        assert controller.last_error == 0.0

    def test_target_settable(self):
        controller = HeartRateController(10.0, 10.0)
        controller.target_rate = 20.0
        assert controller.target_rate == 20.0
        with pytest.raises(ControllerError):
            controller.target_rate = 0.0

    def test_invalid_construction(self):
        with pytest.raises(ControllerError):
            HeartRateController(0.0, 1.0)
        with pytest.raises(ControllerError):
            HeartRateController(1.0, 0.0)
        with pytest.raises(ControllerError):
            HeartRateController(1.0, 1.0, min_speedup=0.0)
        with pytest.raises(ControllerError):
            HeartRateController(1.0, 1.0, min_speedup=2.0, max_speedup=1.0)

    def test_negative_rate_rejected(self):
        controller = HeartRateController(10.0, 10.0)
        with pytest.raises(ControllerError):
            controller.update(-1.0)


class TestClosedLoopBehaviour:
    def test_deadbeat_convergence_with_exact_model(self):
        """With the exact model h(t+1) = b*s(t), a setpoint step is
        corrected in a single control period (pole at z=0)."""
        controller = HeartRateController(
            target_rate=15.0, baseline_rate=10.0, max_speedup=10.0
        )
        rates = simulate(controller, baseline=10.0, steps=5, platform_scale=1.0)
        assert rates[0] == pytest.approx(10.0)  # pre-correction
        assert rates[1] == pytest.approx(15.0)  # deadbeat
        assert rates[-1] == pytest.approx(15.0)

    def test_convergence_after_capacity_drop(self):
        """A 2.4 -> 1.6 GHz power cap scales the true gain by 2/3; the pole
        moves to 1 - 2/3 and convergence is geometric."""
        controller = HeartRateController(10.0, 10.0, max_speedup=10.0)
        rates = simulate(
            controller, baseline=10.0, steps=60, platform_scale=1.6 / 2.4
        )
        assert rates[-1] == pytest.approx(10.0, rel=1e-6)

    def test_convergence_with_mismatched_gain_is_geometric(self):
        """Modeled b wrong by 2x still converges (pole at 1 - 1/2)."""
        controller = HeartRateController(10.0, 20.0, max_speedup=50.0)
        rates = simulate(controller, baseline=10.0, steps=60, platform_scale=0.5)
        assert rates[-1] == pytest.approx(10.0, rel=1e-3)

    @given(scale=st.floats(min_value=0.2, max_value=1.0))
    def test_converges_for_any_capacity_drop(self, scale):
        """Pole 1 - scale stays inside the unit circle for scale in (0,2),
        so the loop converges for any capacity reduction."""
        controller = HeartRateController(10.0, 10.0, max_speedup=1000.0)
        rates = simulate(controller, baseline=10.0, steps=200, platform_scale=scale)
        assert rates[-1] == pytest.approx(10.0, rel=1e-3)

    @given(scale=st.floats(min_value=0.2, max_value=1.0))
    def test_no_oscillation_for_capacity_drops(self, scale):
        """For drops (scale <= 1) the pole is in [0,1): the rate approaches
        the target from below and never overshoots."""
        controller = HeartRateController(10.0, 10.0, max_speedup=1000.0)
        rates = simulate(controller, baseline=10.0, steps=50, platform_scale=scale)
        assert all(rate <= 10.0 + 1e-9 for rate in rates)
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))


class TestZDomainAnalysis:
    def test_paper_loop_is_deadbeat(self):
        """F_loop(z) = 1/z: pole at origin, unit gain, instant settling."""
        analysis = analyze_closed_loop(pole=0.0)
        assert analysis.poles == (0.0,)
        assert analysis.steady_state_gain == 1.0
        assert analysis.stable
        assert analysis.convergence_time == 0.0

    def test_stable_pole_converges_in_finite_time(self):
        analysis = analyze_closed_loop(pole=0.5)
        assert analysis.stable
        assert 0.0 < analysis.convergence_time < math.inf
        assert analysis.steady_state_gain == 1.0

    def test_unit_circle_pole_never_settles(self):
        assert convergence_time(1.0) == math.inf
        assert not analyze_closed_loop(pole=-1.0).stable

    def test_convergence_time_formula(self):
        assert convergence_time(0.1) == pytest.approx(-4.0 / math.log10(0.1))

    @given(pole=st.floats(min_value=0.01, max_value=0.99))
    def test_slower_poles_settle_slower(self, pole):
        faster = convergence_time(pole / 2)
        slower = convergence_time(pole)
        assert slower > faster
