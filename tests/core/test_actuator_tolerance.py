"""Tests for the actuator's selection tolerance (boundary-jitter guard)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.actuator import ActuationPolicy, Actuator, ActuatorError
from repro.core.knobs import KnobConfiguration, KnobSetting, KnobTable


TABLE = KnobTable(
    [
        KnobSetting(KnobConfiguration({"k": 0}), 1.0, 0.0),
        KnobSetting(KnobConfiguration({"k": 1}), 2.0, 0.02),
        KnobSetting(KnobConfiguration({"k": 2}), 4.0, 0.08),
    ]
)


class TestSelectionTolerance:
    def test_jitter_above_setting_sticks_to_it(self):
        """A command 1% above the 2x setting runs 2x for the quantum
        rather than blending 4x with baseline."""
        actuator = Actuator(TABLE, selection_tolerance=0.02)
        plan = actuator.plan(2.02)
        assert len(plan.segments) == 1
        assert plan.segments[0].setting.speedup == 2.0
        assert plan.achieved_speedup == 2.0

    def test_command_beyond_tolerance_blends(self):
        actuator = Actuator(TABLE, selection_tolerance=0.02)
        plan = actuator.plan(2.1)
        speeds = sorted(seg.speedup for seg in plan.segments)
        assert speeds == [1.0, 4.0]

    def test_zero_tolerance_is_exact(self):
        actuator = Actuator(TABLE, selection_tolerance=0.0)
        plan = actuator.plan(2.0 + 1e-6)
        speeds = sorted(seg.speedup for seg in plan.segments)
        assert speeds == [1.0, 4.0]

    def test_tolerance_bounds_validated(self):
        with pytest.raises(ActuatorError):
            Actuator(TABLE, selection_tolerance=-0.1)
        with pytest.raises(ActuatorError):
            Actuator(TABLE, selection_tolerance=0.5)

    @given(speedup=st.floats(min_value=1.0, max_value=3.99))
    def test_shortfall_bounded_by_tolerance(self, speedup):
        """Achieved speedup is never more than `tolerance` below the
        command (and never above what the command asked for by blending)."""
        tolerance = 0.02
        actuator = Actuator(TABLE, selection_tolerance=tolerance)
        plan = actuator.plan(speedup)
        achieved = sum(seg.fraction * seg.speedup for seg in plan.segments)
        assert achieved >= speedup / (1.0 + tolerance) - 1e-9
        assert achieved <= speedup + 1e-9

    @given(speedup=st.floats(min_value=1.0, max_value=3.99))
    def test_tolerant_plan_never_loses_qos_to_exact_plan(self, speedup):
        """Sticking to the lower setting can only reduce expected loss."""
        exact = Actuator(TABLE, selection_tolerance=0.0).plan(speedup)
        tolerant = Actuator(TABLE, selection_tolerance=0.02).plan(speedup)
        assert (
            tolerant.expected_qos_loss() <= exact.expected_qos_loss() + 1e-12
        )
