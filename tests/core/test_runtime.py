"""Integration tests for the PowerDial runtime on the toy application."""

import pytest

from repro.core.actuator import ActuationPolicy
from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import PowerDialRuntime, RuntimeEvent
from repro.hardware.machine import Machine
from tests.core.toyapp import N_MAX, ToyApp, toy_jobs


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ToyApp, toy_jobs())


def make_runtime(system, machine=None, policy=ActuationPolicy.MINIMAL_SPEEDUP):
    machine = machine or Machine()
    target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
    runtime = system.runtime(machine, target_rate=target, policy=policy)
    return runtime, machine, target


def long_jobs(n_jobs=2, items=150):
    return toy_jobs(count=n_jobs, items=items, seed=3)


class TestSteadyState:
    def test_uncapped_run_stays_at_baseline_setting(self, system):
        runtime, _, _ = make_runtime(system)
        result = runtime.run(long_jobs())
        # Platform delivers exactly the target -> no knob movement.
        assert all(s.speedup == pytest.approx(1.0) for s in result.settings_used)

    def test_uncapped_performance_is_on_target(self, system):
        runtime, _, _ = make_runtime(system)
        result = runtime.run(long_jobs())
        assert result.mean_normalized_performance(skip=25) == pytest.approx(
            1.0, rel=0.05
        )

    def test_outputs_grouped_by_job(self, system):
        runtime, _, _ = make_runtime(system)
        jobs = long_jobs()
        result = runtime.run(jobs)
        assert len(result.outputs_by_job) == len(jobs)
        assert [len(out) for out in result.outputs_by_job] == [
            len(job) for job in jobs
        ]

    def test_samples_cover_every_beat(self, system):
        runtime, _, _ = make_runtime(system)
        jobs = long_jobs()
        result = runtime.run(jobs)
        assert len(result.samples) == sum(len(j) for j in jobs)
        assert [s.beat for s in result.samples] == list(range(len(result.samples)))


class TestPowerCapResponse:
    def test_cap_forces_knob_gain_up(self, system):
        runtime, _, _ = make_runtime(system)
        events = [
            RuntimeEvent(at_beat=60, action=lambda m: m.set_frequency(1.6), label="cap")
        ]
        result = runtime.run(long_jobs(), events=events)
        gains_before = [s.knob_gain for s in result.samples[:55]]
        gains_after = [s.knob_gain for s in result.samples[100:]]
        assert max(gains_before) == pytest.approx(1.0)
        assert max(gains_after) > 1.0

    def test_cap_performance_recovers_to_target(self, system):
        runtime, _, _ = make_runtime(system)
        events = [
            RuntimeEvent(at_beat=60, action=lambda m: m.set_frequency(1.6), label="cap")
        ]
        result = runtime.run(long_jobs(), events=events)
        tail = [s.normalized_performance for s in result.samples[-40:]]
        assert sum(tail) / len(tail) == pytest.approx(1.0, rel=0.05)

    def test_without_knobs_cap_performance_stays_low(self, system):
        """A one-setting table (baseline only) cannot adapt."""
        from repro.core.knobs import KnobTable

        baseline_only = KnobTable([system.table.baseline])
        machine = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        runtime = PowerDialRuntime(
            app=ToyApp(),
            table=baseline_only,
            machine=machine,
            target_rate=target,
        )
        events = [
            RuntimeEvent(at_beat=60, action=lambda m: m.set_frequency(1.6), label="cap")
        ]
        result = runtime.run(long_jobs(), events=events)
        tail = [s.normalized_performance for s in result.samples[-40:]]
        assert sum(tail) / len(tail) == pytest.approx(1.6 / 2.4, rel=0.05)

    def test_lifting_cap_returns_to_baseline_quality(self, system):
        runtime, _, _ = make_runtime(system)
        events = [
            RuntimeEvent(at_beat=50, action=lambda m: m.set_frequency(1.6), label="cap"),
            RuntimeEvent(at_beat=180, action=lambda m: m.set_frequency(2.4), label="lift"),
        ]
        result = runtime.run(long_jobs(n_jobs=2, items=150), events=events)
        tail_gains = [s.knob_gain for s in result.samples[-30:]]
        assert max(tail_gains) == pytest.approx(1.0)


class TestRaceToIdle:
    def test_race_to_idle_holds_global_throughput_with_idle_slack(self, system):
        machine = Machine()
        baseline = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        # Ask for half the platform's baseline rate: the slack becomes idle.
        target = baseline / 2
        runtime = system.runtime(
            machine,
            target_rate=target,
            baseline_rate=target,
            policy=ActuationPolicy.RACE_TO_IDLE,
        )
        result = runtime.run(long_jobs(n_jobs=2, items=300))
        global_rate = (len(result.samples) - 1) / result.elapsed
        assert global_rate == pytest.approx(target, rel=0.10)

    def test_race_to_idle_saves_power_versus_busy_baseline(self, system):
        machine = Machine()
        baseline = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        runtime = system.runtime(
            machine,
            target_rate=baseline / 2,
            baseline_rate=baseline / 2,
            policy=ActuationPolicy.RACE_TO_IDLE,
        )
        result = runtime.run(long_jobs(n_jobs=2, items=300))
        # Idle periods pull the mean power below the full-load 220 W.
        assert result.mean_power is not None
        assert result.mean_power < 220.0


class TestControlVariablePokes:
    def test_application_sees_poked_values(self, system):
        """After a cap, processed items must reflect reduced iterations."""
        runtime, _, _ = make_runtime(system)
        events = [
            RuntimeEvent(at_beat=40, action=lambda m: m.set_frequency(1.6), label="cap")
        ]
        jobs = long_jobs(n_jobs=1, items=200)
        result = runtime.run(jobs, events=events)
        # Toy output = item * (1 + 1/n): smaller n -> larger relative output.
        outputs = result.outputs_by_job[0]
        rel = [out / item for out, item in zip(outputs, jobs[0])]
        assert max(rel[100:]) > min(rel[:30]) + 1e-6
