"""Integration tests: alternative controllers driving the real runtime.

The runtime's decision mechanism is pluggable (any SpeedupController);
these tests rerun the power-cap scenario on the toy application under
PID, heuristic-step, and bang-bang control and verify both that the
plumbing works and that the paper's controller remains the best tracker.
"""

import pytest

from repro.control.alternatives import (
    BangBangController,
    HeuristicStepController,
    PIDController,
)
from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import RuntimeEvent
from repro.hardware.machine import Machine
from tests.core.toyapp import ToyApp, toy_jobs


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ToyApp, toy_jobs())


def capped_run(system, controller_factory=None):
    """Run the toy app through a cap at beat 60 under a given controller."""
    machine = Machine()
    target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
    controller = None
    if controller_factory is not None:
        controller = controller_factory(target, system.table.max_speedup)
    runtime = system.runtime(machine, target_rate=target, controller=controller)
    events = [
        RuntimeEvent(at_beat=60, action=lambda m: m.set_frequency(1.6), label="cap")
    ]
    jobs = toy_jobs(count=2, items=150, seed=3)
    return runtime.run(jobs, events=events)


def tail_performance(result, beats=40):
    values = [
        s.normalized_performance
        for s in result.samples[-beats:]
        if s.normalized_performance is not None
    ]
    return sum(values) / len(values)


class TestPluggableControllers:
    def test_default_is_paper_controller(self, system):
        machine = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        runtime = system.runtime(machine, target_rate=target)
        from repro.core.controller import HeartRateController

        assert isinstance(runtime.controller, HeartRateController)

    def test_pid_holds_target_through_cap(self, system):
        result = capped_run(
            system,
            lambda target, s_max: PIDController(
                target, target, kp=0.2, ki=0.8, max_speedup=s_max
            ),
        )
        assert tail_performance(result) == pytest.approx(1.0, rel=0.07)
        # The cap forced the knobs off baseline.
        assert max(s.knob_gain for s in result.samples[100:]) > 1.0

    def test_heuristic_tracks_loosely(self, system):
        result = capped_run(
            system,
            lambda target, s_max: HeuristicStepController(
                target, step_factor=1.25, max_speedup=s_max
            ),
        )
        # It adapts (gain rises) but with visibly worse tracking than
        # the integral controller's 5% band.
        assert max(s.knob_gain for s in result.samples[100:]) > 1.0
        assert tail_performance(result) == pytest.approx(1.0, rel=0.30)

    def test_bang_bang_oscillates_on_real_app(self, system):
        result = capped_run(
            system,
            lambda target, s_max: BangBangController(
                target, high_speedup=s_max
            ),
        )
        gains = [s.knob_gain for s in result.samples[120:]]
        # Switches between the extremes rather than settling.
        assert max(gains) > 1.5 * min(gains)

    def test_paper_controller_tracks_best(self, system):
        def error(result):
            values = [
                abs(s.normalized_performance - 1.0)
                for s in result.samples[100:]
                if s.normalized_performance is not None
            ]
            return sum(values) / len(values)

        paper = error(capped_run(system))
        heuristic = error(
            capped_run(
                system,
                lambda target, s_max: HeuristicStepController(
                    target, step_factor=1.25, max_speedup=s_max
                ),
            )
        )
        bang = error(
            capped_run(
                system,
                lambda target, s_max: BangBangController(
                    target, high_speedup=s_max
                ),
            )
        )
        assert paper <= heuristic + 1e-9
        assert paper < bang
