"""Tests for the calibrator, using the deterministic toy application."""

import pytest

from repro.core.calibration import CalibrationError, calibrate, evaluate_points
from repro.core.knobs import KnobConfiguration
from repro.core.powerdial import build_powerdial
from tests.core.toyapp import N_MAX, N_VALUES, ToyApp, toy_jobs


@pytest.fixture(scope="module")
def calibration():
    return calibrate(ToyApp, toy_jobs())


class TestCalibrate:
    def test_explores_every_combination(self, calibration):
        assert len(calibration.points) == len(N_VALUES)

    def test_baseline_point_has_unit_speedup_zero_loss(self, calibration):
        baseline = calibration.point_for({"n": N_MAX})
        assert baseline.speedup == pytest.approx(1.0)
        assert baseline.qos_loss == 0.0

    def test_speedups_are_work_ratios(self, calibration):
        """Toy work is exactly n per item, so speedup = N_MAX / n."""
        for n in N_VALUES:
            point = calibration.point_for({"n": n})
            assert point.speedup == pytest.approx(N_MAX / n)

    def test_qos_loss_grows_as_knob_shrinks(self, calibration):
        losses = [calibration.point_for({"n": n}).qos_loss for n in N_VALUES]
        assert losses == sorted(losses, reverse=True)

    def test_per_input_data_recorded(self, calibration):
        point = calibration.point_for({"n": 100})
        assert len(point.per_input_speedup) == 3
        assert len(point.per_input_qos) == 3

    def test_unknown_configuration_rejected(self, calibration):
        with pytest.raises(CalibrationError):
            calibration.point_for({"n": 12345})

    def test_requires_training_inputs(self):
        with pytest.raises(CalibrationError):
            calibrate(ToyApp, [])


class TestParetoAndTable:
    def test_toy_frontier_is_entire_monotone_space(self, calibration):
        """Toy speedup and loss are both monotone in n, so every point is
        Pareto-optimal."""
        assert len(calibration.pareto_points()) == len(N_VALUES)

    def test_knob_table_contains_baseline(self, calibration):
        table = calibration.knob_table()
        assert table.baseline.speedup == pytest.approx(1.0)
        assert table.max_speedup == pytest.approx(N_MAX / min(N_VALUES))

    def test_qos_cap_excludes_settings(self):
        result = calibrate(ToyApp, toy_jobs(), qos_cap=1.0 / 150)
        table = result.knob_table()
        # Settings with loss above 1/150 (i.e. n < 150) are excluded.
        assert table.max_speedup == pytest.approx(N_MAX / 200)


class TestEvaluatePoints:
    def test_production_matches_training_for_deterministic_app(self):
        """The toy app's response is input-independent, so production
        re-measurement agrees exactly (Table 2 correlation = 1)."""
        training = calibrate(ToyApp, toy_jobs(seed=1))
        production_points = evaluate_points(
            ToyApp,
            [p.configuration for p in training.pareto_points()],
            toy_jobs(seed=2),
        )
        for train, prod in zip(training.pareto_points(), production_points):
            assert prod.speedup == pytest.approx(train.speedup)
            assert prod.qos_loss == pytest.approx(train.qos_loss, abs=1e-4)


class TestBuildPowerdial:
    def test_full_workflow_produces_system(self):
        system = build_powerdial(ToyApp, toy_jobs())
        assert len(system.table) == len(N_VALUES)
        assert sorted(system.control_set.names) == [
            "half_iterations",
            "iterations",
        ]
        assert system.report.variable_count == 2

    def test_table_settings_carry_control_values(self):
        system = build_powerdial(ToyApp, toy_jobs())
        fastest = system.table.fastest
        assert fastest.control_values["iterations"] == min(N_VALUES)
        baseline = system.table.baseline
        assert baseline.control_values["iterations"] == N_MAX

    def test_requires_training_jobs(self):
        with pytest.raises(ValueError):
            build_powerdial(ToyApp, [])
