"""Tests for the loop-perforation baseline."""

import numpy as np
import pytest

from repro.apps.base import run_job
from repro.core.calibration import calibrate
from repro.core.perforation import (
    PerforatedApplication,
    PerforationError,
)
from tests.core.toyapp import N_MAX, ToyApp, toy_jobs


def perforated_factory():
    return PerforatedApplication(ToyApp())


class TestPerforationMechanics:
    def test_skip_zero_is_identity(self):
        job = toy_jobs(count=1, items=6)[0]
        plain, work_plain, _ = run_job(ToyApp(), {"n": N_MAX}, job)
        perforated, work_perf, _ = run_job(
            perforated_factory(), {"skip": 0}, job
        )
        assert perforated == plain
        assert work_perf == pytest.approx(work_plain)

    def test_skip_one_halves_work(self):
        job = toy_jobs(count=1, items=8)[0]
        _, work_full, _ = run_job(perforated_factory(), {"skip": 0}, job)
        _, work_half, _ = run_job(perforated_factory(), {"skip": 1}, job)
        assert work_full / work_half == pytest.approx(2.0)

    def test_skipped_items_reuse_last_output(self):
        job = toy_jobs(count=1, items=6)[0]
        outputs, _, _ = run_job(perforated_factory(), {"skip": 1}, job)
        assert outputs[1] == outputs[0]
        assert outputs[3] == outputs[2]
        assert outputs[2] != outputs[0]

    def test_first_item_never_skipped(self):
        job = toy_jobs(count=1, items=4)[0]
        outputs, _, _ = run_job(perforated_factory(), {"skip": 3}, job)
        assert outputs[0] is not None

    def test_skip_work_charged(self):
        app = PerforatedApplication(ToyApp(), skip_work=100.0)
        job = toy_jobs(count=1, items=4)[0]
        _, work, _ = run_job(app, {"skip": 3}, job)
        # 1 real item + 3 skipped at 100 units each.
        assert work == pytest.approx(N_MAX * 1.0e6 + 3 * 100.0)

    def test_invalid_skip_work_rejected(self):
        with pytest.raises(PerforationError):
            PerforatedApplication(ToyApp(), skip_work=-1.0)

    def test_reset_clears_reuse_state(self):
        app = perforated_factory()
        job = toy_jobs(count=1, items=4)[0]
        run_job(app, {"skip": 3}, job)
        app.reset()
        outputs, _, _ = run_job(app, {"skip": 3}, job)
        assert outputs[0] is not None


class TestPerforationVsKnobs:
    def test_knobs_dominate_perforation_at_matched_speedup(self):
        """The headline ablation: at ~2x speedup, calibrated knobs lose far
        less QoS than blind perforation (the paper's motivation for
        exploiting the application's own accuracy machinery)."""
        jobs = toy_jobs(count=2, items=12, seed=9)
        knob_result = calibrate(ToyApp, jobs)
        perf_result = calibrate(perforated_factory, jobs)

        knob_2x = min(
            (p for p in knob_result.points if p.speedup >= 1.9),
            key=lambda p: p.speedup,
        )
        perf_2x = min(
            (p for p in perf_result.points if p.speedup >= 1.9),
            key=lambda p: p.speedup,
        )
        assert knob_2x.qos_loss < perf_2x.qos_loss

    def test_perforation_speedups_track_skip_factor(self):
        import math

        items = 16
        jobs = toy_jobs(count=1, items=items, seed=9)
        result = calibrate(perforated_factory, jobs)
        for point in result.points:
            skip = point.configuration["skip"]
            processed = math.ceil(items / (skip + 1))
            assert point.speedup == pytest.approx(items / processed)
