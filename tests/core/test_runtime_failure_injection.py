"""Failure-injection and edge-case tests for the controlled runtime."""

import pytest

from repro.core.actuator import ActuationPolicy
from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import RuntimeEvent
from repro.hardware.machine import Machine
from tests.core.toyapp import ToyApp, toy_jobs


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ToyApp, toy_jobs())


def make_runtime(system, machine=None):
    machine = machine or Machine()
    target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
    return system.runtime(machine, target_rate=target), machine, target


class TestEventInjection:
    def test_event_at_beat_zero_applies_before_first_item(self, system):
        runtime, machine, _ = make_runtime(system)
        events = [RuntimeEvent(0, lambda m: m.set_frequency(1.6), "early cap")]
        result = runtime.run(toy_jobs(count=1, items=60, seed=1), events=events)
        assert result.samples[0].frequency_ghz == 1.6

    def test_event_beyond_end_never_fires(self, system):
        fired = []
        runtime, _, _ = make_runtime(system)
        events = [RuntimeEvent(10_000, lambda m: fired.append(1), "late")]
        runtime.run(toy_jobs(count=1, items=30, seed=1), events=events)
        assert fired == []

    def test_events_dispatch_in_beat_order_regardless_of_input_order(
        self, system
    ):
        order = []
        runtime, _, _ = make_runtime(system)
        events = [
            RuntimeEvent(40, lambda m: order.append("second"), "b"),
            RuntimeEvent(10, lambda m: order.append("first"), "a"),
        ]
        runtime.run(toy_jobs(count=1, items=80, seed=1), events=events)
        assert order == ["first", "second"]

    def test_repeated_cap_lift_cycles(self, system):
        """Thrashing power caps: the controller survives and recovers."""
        runtime, _, _ = make_runtime(system)
        events = []
        for index, beat in enumerate(range(40, 400, 80)):
            freq = 1.6 if index % 2 == 0 else 2.4
            events.append(
                RuntimeEvent(beat, lambda m, f=freq: m.set_frequency(f), "flip")
            )
        result = runtime.run(toy_jobs(count=1, items=450, seed=2), events=events)
        tail = [
            s.normalized_performance
            for s in result.samples[-40:]
            if s.normalized_performance is not None
        ]
        assert sum(tail) / len(tail) == pytest.approx(1.0, rel=0.12)

    def test_cap_to_lowest_state_saturates_gracefully(self, system):
        """A cap deeper than the knob range can compensate: the runtime
        saturates at the fastest setting rather than failing."""
        from repro.core.knobs import KnobTable

        # Table with limited headroom: baseline plus a 1.6x setting only.
        limited = KnobTable(
            [s for s in system.table if s.speedup < 2.1][:2]
            or [system.table.baseline]
        )
        machine = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], machine)
        from repro.core.runtime import PowerDialRuntime

        runtime = PowerDialRuntime(
            app=ToyApp(), table=limited, machine=machine, target_rate=target
        )
        events = [RuntimeEvent(20, lambda m: m.set_frequency(1.6), "cap")]
        result = runtime.run(toy_jobs(count=1, items=120, seed=3), events=events)
        # Saturated: runs at the fastest available setting.
        assert result.samples[-1].knob_gain == limited.max_speedup


class TestRuntimeInvariants:
    def test_sample_times_monotone(self, system):
        runtime, _, _ = make_runtime(system)
        result = runtime.run(toy_jobs(count=2, items=50, seed=4))
        times = [s.time for s in result.samples]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_all_settings_come_from_table(self, system):
        runtime, _, _ = make_runtime(system)
        events = [RuntimeEvent(30, lambda m: m.set_frequency(1.6), "cap")]
        result = runtime.run(toy_jobs(count=1, items=150, seed=5), events=events)
        table_settings = set(id(s) for s in system.table)
        assert all(id(s) in table_settings for s in result.settings_used)

    def test_energy_is_positive_and_consistent_with_power(self, system):
        runtime, machine, _ = make_runtime(system)
        result = runtime.run(toy_jobs(count=1, items=200, seed=6))
        assert result.energy_joules > 0
        if result.mean_power is not None:
            approx_energy = result.mean_power * machine.now
            assert result.energy_joules == pytest.approx(
                approx_energy, rel=0.2
            )

    def test_rerunning_runtime_resets_state(self, system):
        runtime, _, _ = make_runtime(system)
        first = runtime.run(toy_jobs(count=1, items=40, seed=7))
        second = runtime.run(toy_jobs(count=1, items=40, seed=7))
        assert len(first.samples) == len(second.samples)
        # Beats renumber from zero on each run.
        assert second.samples[0].beat == 0

    def test_empty_job_list_yields_empty_result(self, system):
        runtime, _, _ = make_runtime(system)
        result = runtime.run([])
        assert result.samples == []
        assert result.outputs_by_job == []
        assert result.elapsed == 0.0
