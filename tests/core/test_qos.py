"""Unit and property tests for the QoS distortion metric (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.qos import (
    DistortionMetric,
    FMeasureQoS,
    QoSError,
    distortion,
)


class TestDistortion:
    def test_identical_outputs_have_zero_loss(self):
        assert distortion([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_single_component_relative_error(self):
        assert distortion([10.0], [9.0]) == pytest.approx(0.1)

    def test_mean_over_components(self):
        # Component losses 0.1 and 0.3 -> mean 0.2.
        assert distortion([10.0, 10.0], [9.0, 7.0]) == pytest.approx(0.2)

    def test_weights_scale_components(self):
        # Equation 1: qos = (1/m) * sum(w_i * |rel err|).
        value = distortion([10.0, 10.0], [9.0, 7.0], weights=[2.0, 0.0])
        assert value == pytest.approx(0.5 * (2.0 * 0.1 + 0.0))

    def test_zero_baseline_component_uses_absolute_error(self):
        assert distortion([0.0], [0.5]) == pytest.approx(0.5)

    def test_negative_baseline_components_allowed(self):
        assert distortion([-10.0], [-9.0]) == pytest.approx(0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QoSError):
            distortion([1.0, 2.0], [1.0])

    def test_empty_abstraction_rejected(self):
        with pytest.raises(QoSError):
            distortion([], [])

    def test_bad_weights_rejected(self):
        with pytest.raises(QoSError):
            distortion([1.0], [1.0], weights=[1.0, 2.0])
        with pytest.raises(QoSError):
            distortion([1.0], [1.0], weights=[-1.0])

    def test_multidimensional_rejected(self):
        with pytest.raises(QoSError):
            distortion([[1.0]], [[1.0]])

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50)
    )
    def test_self_distortion_is_zero(self, values):
        assert distortion(values, values) == 0.0

    @given(
        base=st.lists(
            st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=20
        ),
        scale=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_uniform_scaling_gives_uniform_loss(self, base, scale):
        observed = [b * scale for b in base]
        assert distortion(base, observed) == pytest.approx(abs(1.0 - scale))

    @given(
        base=st.lists(
            st.floats(min_value=0.1, max_value=1e3), min_size=2, max_size=20
        )
    )
    def test_distortion_nonnegative(self, base):
        observed = list(reversed(base))
        assert distortion(base, observed) >= 0.0


class TestDistortionMetric:
    def test_wraps_abstraction(self):
        metric = DistortionMetric(lambda out: np.asarray(out, dtype=float))
        assert metric([10.0], [9.0]) == pytest.approx(0.1)
        assert metric.name == "distortion"

    def test_weights_depend_on_baseline(self):
        """bodytrack-style magnitude-proportional weights."""
        metric = DistortionMetric(
            lambda out: np.asarray(out, dtype=float),
            weights=lambda base: np.abs(base) / np.sum(np.abs(base)),
        )
        loss_big_error_on_big = metric([10.0, 1.0], [9.0, 1.0])
        loss_big_error_on_small = metric([10.0, 1.0], [10.0, 0.9])
        assert loss_big_error_on_big > loss_big_error_on_small


class TestFMeasureQoS:
    def test_perfect_f_is_zero_loss(self):
        metric = FMeasureQoS(lambda base, obs: 1.0)
        assert metric(None, None) == 0.0

    def test_loss_is_one_minus_f(self):
        metric = FMeasureQoS(lambda base, obs: 0.4)
        assert metric(None, None) == pytest.approx(0.6)

    def test_out_of_range_f_rejected(self):
        metric = FMeasureQoS(lambda base, obs: 1.5)
        with pytest.raises(QoSError):
            metric(None, None)
