"""Public-API docstring coverage gate for the documented packages.

``repro.datacenter`` (including the ``controlplane`` subpackage) and
``repro.bench`` ship with a documented public API (module, class, and
public-method/function level); CI runs this
walker so a PR cannot silently regress that coverage.  The walker uses
``inspect.getdoc``, so overriding a *documented* base-class method
without restating its docstring still counts as documented
(inheritance is documentation), while brand-new public surface without
a docstring fails with the offending dotted names listed.
"""

import importlib
import inspect
import pkgutil

import pytest

DOCUMENTED_PACKAGES = (
    "repro.datacenter",
    "repro.datacenter.controlplane",
    "repro.datacenter.journal",
    "repro.bench",
)


def _iter_modules(package_name):
    """Yield (dotted_name, module) for a package and its submodules."""
    package = importlib.import_module(package_name)
    yield package_name, package
    for info in pkgutil.iter_modules(package.__path__):
        name = f"{package_name}.{info.name}"
        yield name, importlib.import_module(name)


def _class_members(cls):
    """Public methods/properties defined by ``cls`` itself."""
    for attr_name in vars(cls):
        if attr_name.startswith("_"):
            continue
        member = getattr(cls, attr_name)
        if callable(member) or isinstance(
            inspect.getattr_static(cls, attr_name), property
        ):
            yield attr_name, member


def iter_public_api(package_name):
    """Yield ``(dotted_name, object)`` for the package's public surface.

    Covers the package module, every submodule, every public class and
    function *defined* there (re-exports are the defining module's
    responsibility), and every public method/property those classes
    define.
    """
    for module_name, module in _iter_modules(package_name):
        yield module_name, module
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            dotted = f"{module_name}.{attr_name}"
            yield dotted, obj
            if inspect.isclass(obj):
                for member_name, member in _class_members(obj):
                    yield f"{dotted}.{member_name}", member


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_public_api_is_fully_documented(package_name):
    missing = sorted(
        dotted
        for dotted, obj in iter_public_api(package_name)
        if not inspect.getdoc(obj)
    )
    assert not missing, (
        f"{package_name} public API lost docstring coverage; undocumented: "
        + ", ".join(missing)
    )


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_walker_sees_a_real_api_surface(package_name):
    """Guard against the walker silently matching nothing."""
    surface = list(iter_public_api(package_name))
    assert len(surface) > 10
    kinds = {inspect.isclass(obj) for _, obj in surface}
    assert kinds == {True, False}
