"""Tests for the control-variable checks and the tracing driver.

Uses small synthetic applications that conform to the traceable protocol,
including deliberately broken ones that each check must reject.
"""

import pytest

from repro.tracing.checks import (
    KnobRejectionError,
    check_consistent,
    check_constant,
    filter_relevant,
    find_candidate_variables,
)
from repro.tracing.influence import traced
from repro.tracing.report import render_report
from repro.tracing.tracer import (
    ControlVariableSet,
    identify_control_variables,
    trace_configuration,
)
from repro.tracing.variables import AddressSpace


class WellBehavedApp:
    """Derives two control variables from `sm`, reads both in the loop."""

    def initialize(self, config, space):
        space.write("num_trials", config["sm"] * 100)
        space.write("block", config["sm"] // 2 + 1)
        space.write("unrelated", 42)

    def prepare(self, job):
        return list(range(job))

    def process_item(self, item, space, tracker):
        n = space.read("num_trials")
        b = space.read("block")
        return int(n) + int(b)


class ImpureApp(WellBehavedApp):
    """Mixes the knob parameter with another config value (Pure violation)."""

    def initialize(self, config, space):
        space.write("num_trials", config["sm"] * config["other"])


class NonConstantApp(WellBehavedApp):
    """Writes a control variable inside the main loop (Constant violation)."""

    def process_item(self, item, space, tracker):
        n = space.read("num_trials")
        space.write("num_trials", n + 1)
        return int(n)


class IrrelevantApp(WellBehavedApp):
    """Derives a variable it never reads in the main loop."""

    def initialize(self, config, space):
        super().initialize(config, space)
        space.write("derived_but_unused", config["sm"] + 7)


class InconsistentApp(WellBehavedApp):
    """Produces different control variables for different settings."""

    def initialize(self, config, space):
        space.write("num_trials", config["sm"] * 100)
        if int(config["sm"]) > 1:
            space.write("extra", config["sm"] * 2)
        space.write("block", config["sm"] // 2 + 1)

    def process_item(self, item, space, tracker):
        n = space.read("num_trials")
        b = space.read("block")
        if "extra" in space:
            n = n + space.read("extra")
        return int(n) + int(b)


class TestFindCandidates:
    def test_finds_influenced_variables(self):
        space = AddressSpace()
        space.write("a", traced(5, "sm") * 2)
        space.write("plain", 7)
        candidates = find_candidate_variables(space, {"sm"})
        assert candidates.names == {"a"}
        assert candidates.influences["a"] == {"sm"}

    def test_impure_variable_rejects(self):
        space = AddressSpace()
        space.write("a", traced(5, "sm") * traced(2, "other"))
        with pytest.raises(KnobRejectionError) as excinfo:
            find_candidate_variables(space, {"sm"})
        assert excinfo.value.reason == "pure"
        assert "other" in excinfo.value.details

    def test_multi_knob_purity_ok(self):
        space = AddressSpace()
        space.write("a", traced(5, "sm") + traced(1, "layers"))
        candidates = find_candidate_variables(space, {"sm", "layers"})
        assert candidates.influences["a"] == {"sm", "layers"}


class TestTraceConfiguration:
    def test_well_behaved_app_yields_control_variables(self):
        result = trace_configuration(
            WellBehavedApp(), {"sm": 4}, {"sm"}, sample_job=5
        )
        assert set(result.values) == {"num_trials", "block"}
        assert result.values["num_trials"] == 400
        assert result.values["block"] == 3

    def test_values_are_plain_not_traced(self):
        result = trace_configuration(
            WellBehavedApp(), {"sm": 4}, {"sm"}, sample_job=5
        )
        assert type(result.values["num_trials"]) is int

    def test_irrelevant_variable_filtered_not_rejected(self):
        result = trace_configuration(
            IrrelevantApp(), {"sm": 4}, {"sm"}, sample_job=5
        )
        assert "derived_but_unused" not in result.values
        assert "num_trials" in result.values

    def test_impure_app_rejected(self):
        with pytest.raises(KnobRejectionError) as excinfo:
            trace_configuration(
                ImpureApp(), {"sm": 4, "other": 3}, {"sm"}, sample_job=5
            )
        assert excinfo.value.reason == "pure"

    def test_nonconstant_app_rejected(self):
        with pytest.raises(KnobRejectionError) as excinfo:
            trace_configuration(NonConstantApp(), {"sm": 4}, {"sm"}, sample_job=5)
        assert excinfo.value.reason == "constant"


class TestIdentifyControlVariables:
    def test_records_values_for_every_configuration(self):
        configs = [{"sm": 1}, {"sm": 2}, {"sm": 4}]
        control = identify_control_variables(
            WellBehavedApp, configs, {"sm"}, sample_job=5
        )
        assert sorted(control.names) == ["block", "num_trials"]
        assert control.values_for({"sm": 2})["num_trials"] == 200
        assert control.values_for({"sm": 4})["num_trials"] == 400

    def test_inconsistent_app_rejected(self):
        configs = [{"sm": 1}, {"sm": 2}]
        with pytest.raises(KnobRejectionError) as excinfo:
            identify_control_variables(
                InconsistentApp, configs, {"sm"}, sample_job=5
            )
        assert excinfo.value.reason == "consistent"

    def test_unknown_configuration_lookup_fails(self):
        control = identify_control_variables(
            WellBehavedApp, [{"sm": 1}], {"sm"}, sample_job=5
        )
        with pytest.raises(KeyError):
            control.values_for({"sm": 99})

    def test_access_sites_present(self):
        control = identify_control_variables(
            WellBehavedApp, [{"sm": 1}], {"sm"}, sample_job=5
        )
        by_name = {v.name: v for v in control.variables}
        assert any("initialize" in s for s in by_name["num_trials"].write_sites)
        assert any("process_item" in s for s in by_name["num_trials"].read_sites)


class TestConsistentCheck:
    def test_empty_rejected(self):
        with pytest.raises(KnobRejectionError):
            check_consistent({})


class TestReport:
    def test_report_lists_variables_parameters_and_sites(self):
        control = identify_control_variables(
            WellBehavedApp, [{"sm": 1}, {"sm": 2}], {"sm"}, sample_job=5
        )
        report = render_report("wellbehaved", control)
        assert report.variable_count == 2
        assert "num_trials" in report.text
        assert "sm" in report.text
        assert "initialize" in report.text
        assert "2 parameter combination(s)" in report.text
        assert str(report) == report.text
