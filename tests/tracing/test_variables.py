"""Unit tests for the logged application address space."""

import pytest

from repro.tracing.influence import traced
from repro.tracing.variables import AddressSpace, AddressSpaceError, Phase


class TestBasicStore:
    def test_write_then_read(self):
        space = AddressSpace()
        space.write("n", 5)
        assert space.read("n") == 5

    def test_unknown_read_rejected(self):
        with pytest.raises(AddressSpaceError):
            AddressSpace().read("missing")

    def test_unknown_poke_rejected(self):
        """The runtime can only poke variables the application created."""
        with pytest.raises(AddressSpaceError):
            AddressSpace().poke("missing", 1)

    def test_peek_does_not_log(self):
        space = AddressSpace()
        space.write("n", 5)
        space.peek("n")
        assert space.reads == []

    def test_names_in_insertion_order(self):
        space = AddressSpace()
        space.write("b", 1)
        space.write("a", 2)
        assert space.names() == ["b", "a"]

    def test_contains_len_iter(self):
        space = AddressSpace()
        space.write("x", 1)
        assert "x" in space and "y" not in space
        assert len(space) == 1
        assert list(space) == ["x"]


class TestPhaseLogging:
    def test_startup_phase_until_first_heartbeat(self):
        space = AddressSpace()
        space.write("n", 1)
        assert space.writes[0].phase is Phase.STARTUP
        space.mark_first_heartbeat()
        space.write("m", 2)
        assert space.writes[1].phase is Phase.MAIN

    def test_mark_is_idempotent(self):
        space = AddressSpace()
        space.mark_first_heartbeat()
        space.mark_first_heartbeat()
        assert space.phase is Phase.MAIN

    def test_reads_of_filters_by_phase(self):
        space = AddressSpace()
        space.write("n", 1)
        space.read("n")
        space.mark_first_heartbeat()
        space.read("n")
        assert len(space.reads_of("n")) == 2
        assert len(space.reads_of("n", Phase.MAIN)) == 1
        assert len(space.reads_of("n", Phase.STARTUP)) == 1

    def test_writes_of_filters_by_phase(self):
        space = AddressSpace()
        space.write("n", 1)
        space.mark_first_heartbeat()
        space.write("n", 2)
        assert len(space.writes_of("n", Phase.MAIN)) == 1

    def test_access_sites_recorded(self):
        space = AddressSpace()
        space.write("n", 1)
        site = space.writes[0].site
        assert "test_variables" in site

    def test_logging_can_be_disabled(self):
        space = AddressSpace(log_accesses=False)
        space.write("n", 1)
        space.read("n")
        assert space.reads == [] and space.writes == []


class TestPokes:
    def test_poke_changes_value_without_application_write(self):
        space = AddressSpace()
        space.write("n", 1)
        space.mark_first_heartbeat()
        space.poke("n", 9)
        assert space.read("n") == 9
        assert space.writes_of("n", Phase.MAIN) == []
        assert len(space.pokes) == 1

    def test_poke_site_is_runtime(self):
        space = AddressSpace()
        space.write("n", 1)
        space.poke("n", 2)
        assert space.pokes[0].site == "powerdial.runtime"


class TestSnapshots:
    def test_snapshot_strips_tracing(self):
        space = AddressSpace()
        space.write("n", traced(5, "sm"))
        space.write("v", [traced(1, "sm"), 2])
        assert space.snapshot() == {"n": 5, "v": [1, 2]}

    def test_influence_map(self):
        space = AddressSpace()
        space.write("n", traced(5, "sm"))
        space.write("plain", 7)
        influence = space.influence_map()
        assert influence["n"] == {"sm"}
        assert influence["plain"] == frozenset()
