"""Unit tests for value-level influence propagation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.tracing.influence import (
    TracedValue,
    combine_influence,
    influence_of,
    is_traced,
    strip,
    traced,
)


class TestTracedConstruction:
    def test_traced_int(self):
        value = traced(5, "sm")
        assert value.value == 5
        assert value.influence == {"sm"}

    def test_traced_float(self):
        value = traced(2.5, "qp")
        assert value.value == 2.5

    def test_traced_list_wraps_elements(self):
        values = traced([1, 2, 3], "layers")
        assert all(isinstance(v, TracedValue) for v in values)
        assert influence_of(values) == {"layers"}

    def test_traced_tuple_wraps_elements(self):
        values = traced((1.0, 2.0), "p")
        assert isinstance(values, tuple)
        assert influence_of(values) == {"p"}

    def test_retracing_merges_influence(self):
        value = traced(traced(5, "a"), "b")
        assert value.influence == {"a", "b"}

    def test_untraceable_types_rejected(self):
        with pytest.raises(TypeError):
            traced("text", "p")
        with pytest.raises(TypeError):
            traced(True, "p")


class TestArithmeticPropagation:
    def test_binary_ops_union_influence(self):
        a = traced(6, "x")
        b = traced(3, "y")
        assert (a + b).influence == {"x", "y"}
        assert (a - b).value == 3
        assert (a * b).value == 18
        assert (a / b).value == 2.0
        assert (a // b).value == 2
        assert (a % b).value == 0
        assert (a ** b).value == 216

    def test_mixed_with_plain_operands(self):
        a = traced(10, "x")
        assert (a + 5).influence == {"x"}
        assert (5 + a).influence == {"x"}
        assert (a * 2).value == 20
        assert (100 / a).value == 10.0
        assert (100 // a).value == 10
        assert (100 - a).value == 90
        assert (3 % a).value == 3
        assert (2 ** a).value == 1024

    def test_unary_ops_keep_influence(self):
        a = traced(-4, "x")
        assert (-a).value == 4 and (-a).influence == {"x"}
        assert abs(a).value == 4
        assert (+a).value == -4

    def test_rounding_family(self):
        a = traced(2.7, "x")
        assert round(a).value == 3
        assert math.floor(a).value == 2
        assert math.ceil(a).value == 3
        assert math.trunc(a).value == 2
        assert math.floor(a).influence == {"x"}

    def test_chained_derivation_accumulates(self):
        sm = traced(1000, "sm")
        derived = (sm * 2 + 10) // 3
        assert derived.value == (1000 * 2 + 10) // 3
        assert derived.influence == {"sm"}

    @given(
        a=st.integers(min_value=-1000, max_value=1000),
        b=st.integers(min_value=1, max_value=1000),
    )
    def test_traced_arithmetic_matches_plain(self, a, b):
        ta, tb = traced(a, "a"), traced(b, "b")
        assert (ta + tb).value == a + b
        assert (ta * tb).value == a * b
        assert (ta - tb).value == a - b
        assert (ta // tb).value == a // b
        assert (ta % tb).value == a % b

    @given(
        a=st.floats(min_value=-1e6, max_value=1e6),
        b=st.floats(min_value=0.001, max_value=1e6),
    )
    def test_influence_union_property(self, a, b):
        ta, tb = traced(a, "a"), traced(b, "b")
        for result in (ta + tb, ta * tb, ta / tb, ta - tb):
            assert result.influence == {"a", "b"}


class TestControlFlowBoundary:
    def test_comparisons_return_plain_bool(self):
        """Control-flow influence is untracked, as in the paper."""
        a = traced(5, "x")
        assert isinstance(a > 3, bool)
        assert (a > 3) is True
        assert (a == 5) is True
        assert (a != 5) is False
        assert (a <= 5) is True
        assert (a >= 6) is False
        assert (a < 6) is True

    def test_bool_conversion(self):
        assert bool(traced(1, "x")) is True
        assert bool(traced(0, "x")) is False

    def test_index_usable_in_range(self):
        a = traced(3, "n")
        assert list(range(a)) == [0, 1, 2]

    def test_index_rejects_floats(self):
        with pytest.raises(TypeError):
            range(traced(2.5, "n"))

    def test_min_with_preserves_influence(self):
        a = traced(5, "x")
        result = a.min_with(2)
        assert result.value == 2
        assert result.influence == {"x"}

    def test_max_with_preserves_influence(self):
        a = traced(5, "x")
        result = a.max_with(9)
        assert result.value == 9
        assert result.influence == {"x"}


class TestHelpers:
    def test_strip_recurses(self):
        nested = [traced(1, "a"), (traced(2, "b"), 3)]
        assert strip(nested) == [1, (2, 3)]

    def test_influence_of_plain_is_empty(self):
        assert influence_of(42) == frozenset()
        assert influence_of("text") == frozenset()

    def test_influence_of_mixed_list(self):
        assert influence_of([traced(1, "a"), 2, traced(3, "b")]) == {"a", "b"}

    def test_is_traced(self):
        assert is_traced(traced(1, "a"))
        assert not is_traced(1)
        assert not is_traced(TracedValue(1, ()))

    def test_combine_influence(self):
        assert combine_influence(traced(1, "a"), 2, traced(3, "b")) == {"a", "b"}

    def test_conversions_drop_wrapper(self):
        assert int(traced(5, "x")) == 5
        assert float(traced(5, "x")) == 5.0
        assert isinstance(int(traced(5, "x")), int)

    def test_hash_matches_value(self):
        assert hash(traced(5, "x")) == hash(5)
