"""Tests for the Section 3 consolidation models (Eq. 20-24)."""

import pytest
from hypothesis import given, strategies as st

from repro.models.consolidation import (
    ConsolidationError,
    average_power,
    machines_required,
    plan_consolidation,
)


class TestMachinesRequired:
    def test_paper_parsec_provisioning(self):
        """4 machines with S >= 4 consolidate to 1 (the 3/4 reduction)."""
        assert machines_required(4, 4.0) == 1
        assert machines_required(4, 4.5) == 1

    def test_paper_swish_provisioning(self):
        """3 machines with S ~ 1.5 consolidate to 2 (the 1/3 reduction)."""
        assert machines_required(3, 1.5) == 2

    def test_ceiling_behavior(self):
        assert machines_required(4, 3.9) == 2
        assert machines_required(10, 3.0) == 4

    def test_unit_speedup_keeps_everything(self):
        assert machines_required(7, 1.0) == 7

    def test_never_below_one_machine(self):
        assert machines_required(2, 100.0) == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConsolidationError):
            machines_required(0, 2.0)
        with pytest.raises(ConsolidationError):
            machines_required(4, 0.5)

    @given(
        n=st.integers(min_value=1, max_value=100),
        s=st.floats(min_value=1.0, max_value=50.0),
    )
    def test_consolidated_capacity_still_covers_peak(self, n, s):
        """Equation 21's defining property: N_new * S >= N_orig."""
        assert machines_required(n, s) * s >= n - 1e-9


class TestAveragePower:
    def test_equation_22(self):
        assert average_power(4, 0.25, 220.0, 90.0) == pytest.approx(
            4 * (0.25 * 220 + 0.75 * 90)
        )

    def test_idle_system(self):
        assert average_power(4, 0.0, 220.0, 90.0) == pytest.approx(360.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConsolidationError):
            average_power(-1, 0.5, 220.0, 90.0)
        with pytest.raises(ConsolidationError):
            average_power(1, 1.5, 220.0, 90.0)
        with pytest.raises(ConsolidationError):
            average_power(1, 0.5, 80.0, 90.0)


class TestPlanConsolidation:
    def test_savings_positive_at_typical_utilization(self):
        plan = plan_consolidation(4, 4.0, 0.25, 220.0, 90.0)
        assert plan.consolidated_machines == 1
        assert plan.power_savings > 0

    def test_consolidated_system_utilization_rises(self):
        plan = plan_consolidation(4, 4.0, 0.25, 220.0, 90.0)
        # 25% of 4 machines of work on 1 machine -> 100% utilization.
        assert plan.consolidated_power == pytest.approx(220.0)

    @given(
        u=st.floats(min_value=0.0, max_value=1.0),
        s=st.floats(min_value=1.0, max_value=16.0),
    )
    def test_savings_never_negative(self, u, s):
        """Fewer machines at higher utilization never draw more power
        (idle power dominates the waste)."""
        plan = plan_consolidation(8, s, u, 220.0, 90.0)
        assert plan.power_savings >= -1e-9
