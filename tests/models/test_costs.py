"""Tests for the Section 3 data-center cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.models.consolidation import plan_consolidation
from repro.models.costs import (
    ConsolidationSavings,
    CostModel,
    CostModelError,
    consolidation_savings,
    deployment_cost,
)

HOURS_PER_YEAR = 8766.0


class TestCostModel:
    def test_defaults_are_valid(self):
        model = CostModel()
        assert model.pue >= 1.0
        assert model.lifetime_years > 0

    def test_energy_cost_formula(self):
        # 1000 W IT at PUE 2.0 for 1 year at $0.10/kWh:
        # 1000 * 2 * 8766 / 1000 * 0.10 = $1753.20.
        model = CostModel(
            pue=2.0, energy_price_per_kwh=0.10, lifetime_years=1.0
        )
        assert model.energy_cost(1000.0) == pytest.approx(1753.2)

    def test_energy_cost_zero_power(self):
        assert CostModel().energy_cost(0.0) == 0.0

    def test_energy_cost_negative_power_rejected(self):
        with pytest.raises(CostModelError):
            CostModel().energy_cost(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"server_capital": -1.0},
            {"provisioning_per_watt": -0.5},
            {"pue": 0.99},
            {"energy_price_per_kwh": -0.01},
            {"lifetime_years": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(CostModelError):
            CostModel(**kwargs)


class TestDeploymentCost:
    def test_breakdown_components(self):
        model = CostModel(
            server_capital=1000.0,
            provisioning_per_watt=5.0,
            pue=1.5,
            energy_price_per_kwh=0.10,
            lifetime_years=1.0,
        )
        cost = deployment_cost(
            4, mean_power=400.0, peak_power=880.0, model=model
        )
        assert cost.server_capital == 4000.0
        # Provisioned watts are PUE-inflated: 880 * 1.5 * $5.
        assert cost.provisioning_capital == pytest.approx(6600.0)
        assert cost.energy == pytest.approx(
            400.0 * 1.5 * HOURS_PER_YEAR / 1000.0 * 0.10
        )
        assert cost.total == pytest.approx(
            cost.server_capital + cost.provisioning_capital + cost.energy
        )

    def test_zero_machines(self):
        cost = deployment_cost(0, 0.0, 0.0)
        assert cost.total == 0.0

    def test_mean_above_peak_rejected(self):
        with pytest.raises(CostModelError):
            deployment_cost(1, mean_power=300.0, peak_power=200.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(CostModelError):
            deployment_cost(-1, 0.0, 0.0)
        with pytest.raises(CostModelError):
            deployment_cost(1, -1.0, 10.0)


class TestConsolidationSavings:
    def plan(self, speedup=4.0, utilization=0.25):
        # Paper platform power levels: 220 W loaded, 90 W idle.
        return plan_consolidation(
            original_machines=4,
            speedup=speedup,
            utilization=utilization,
            p_load=220.0,
            p_idle=90.0,
        )

    def test_savings_positive_for_real_consolidation(self):
        savings = consolidation_savings(self.plan(), 220.0)
        assert savings.capital_savings > 0
        assert savings.energy_savings > 0
        assert savings.total_savings == pytest.approx(
            savings.capital_savings + savings.energy_savings
        )

    def test_capital_dominates_at_low_utilization(self):
        """The Section 3 observation: over the facility lifetime the
        capital costs can exceed the energy costs."""
        savings = consolidation_savings(self.plan(utilization=0.2), 220.0)
        assert savings.capital_savings > savings.energy_savings

    def test_no_speedup_no_savings(self):
        plan = self.plan(speedup=1.0)
        savings = consolidation_savings(plan, 220.0)
        assert plan.consolidated_machines == plan.original_machines
        assert savings.capital_savings == pytest.approx(0.0)
        assert savings.total_savings == pytest.approx(0.0, abs=1e-6)

    def test_invalid_peak_power(self):
        with pytest.raises(CostModelError):
            consolidation_savings(self.plan(), 0.0)

    def test_returns_both_breakdowns(self):
        savings = consolidation_savings(self.plan(), 220.0)
        assert isinstance(savings, ConsolidationSavings)
        assert savings.original.server_capital == 4 * CostModel().server_capital
        assert savings.consolidated.server_capital == CostModel().server_capital


@given(
    machines=st.integers(min_value=1, max_value=64),
    speedup=st.floats(min_value=1.0, max_value=50.0),
    utilization=st.floats(min_value=0.0, max_value=1.0),
    p_idle=st.floats(min_value=10.0, max_value=150.0),
)
def test_consolidation_never_costs_more(machines, speedup, utilization, p_idle):
    """Property: pricing an Eq. 21 consolidation can only save money --
    fewer machines, less provisioned power, and Eq. 22-24 guarantee the
    smaller pool never draws more."""
    p_load = p_idle + 100.0
    plan = plan_consolidation(machines, speedup, utilization, p_load, p_idle)
    savings = consolidation_savings(plan, p_load)
    assert savings.total_savings >= -1e-6
    assert savings.capital_savings >= -1e-6


@given(
    mean=st.floats(min_value=0.0, max_value=5000.0),
    extra=st.floats(min_value=0.0, max_value=5000.0),
    price=st.floats(min_value=0.0, max_value=1.0),
)
def test_energy_cost_monotone_in_power_and_price(mean, extra, price):
    model = CostModel(energy_price_per_kwh=price)
    assert model.energy_cost(mean + extra) >= model.energy_cost(mean)
