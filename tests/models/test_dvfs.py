"""Tests for the Section 3 DVFS energy models (Eq. 12-19)."""

import pytest
from hypothesis import given, strategies as st

from repro.models.dvfs import (
    EnergyModelError,
    dvfs_energy_savings,
    dvfs_times,
    knob_dvfs_energy,
)

# Paper platform constants.
P_NODVFS, P_DVFS, P_IDLE = 220.0, 176.0, 90.0


class TestDvfsTimes:
    def test_frequency_ratio_scaling(self):
        """t2 = f_nodvfs / f_dvfs * t1 (Section 3)."""
        assert dvfs_times(100.0, 2.4, 1.6) == pytest.approx(150.0)

    def test_same_frequency_no_change(self):
        assert dvfs_times(100.0, 2.4, 2.4) == 100.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(EnergyModelError):
            dvfs_times(0.0, 2.4, 1.6)
        with pytest.raises(EnergyModelError):
            dvfs_times(1.0, 2.4, 0.0)


class TestDvfsEnergySavings:
    def test_equation_12_accounting(self):
        """E_dvfs = (P_nodvfs*t1 + P_idle*t_delay) - P_dvfs*t2 (Fig. 3).

        At the paper platform's powers the two strategies nearly tie
        (savings ~100 J on a 26 kJ task) — DVFS barely pays here, which
        is exactly why the paper adds dynamic knobs on top.
        """
        savings = dvfs_energy_savings(P_NODVFS, P_DVFS, P_IDLE, 100.0, 50.0)
        assert savings == pytest.approx(
            (220.0 * 100 + 90.0 * 50) - 176.0 * 150
        )
        assert savings == pytest.approx(100.0)

    def test_dvfs_wins_with_low_enough_dvfs_power(self):
        savings = dvfs_energy_savings(P_NODVFS, 140.0, P_IDLE, 100.0, 50.0)
        assert savings > 0

    def test_no_slack_means_pure_power_comparison(self):
        savings = dvfs_energy_savings(P_NODVFS, P_DVFS, P_IDLE, 100.0, 0.0)
        assert savings == pytest.approx(220.0 * 100 - 176.0 * 100)

    def test_negative_slack_rejected(self):
        with pytest.raises(EnergyModelError):
            dvfs_energy_savings(P_NODVFS, P_DVFS, P_IDLE, 100.0, -1.0)


class TestKnobDvfsEnergy:
    def test_unit_speedup_reduces_to_dvfs_only(self):
        """S = 1: knobs change nothing, savings are zero (Eq. 19)."""
        result = knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, 50.0, 1.0)
        assert result.e_elastic == pytest.approx(result.e_dvfs)
        assert result.savings == pytest.approx(0.0)

    def test_equation_14_race_to_idle_accounting(self):
        result = knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, 0.0, 2.0)
        # t1' = 50, t_delay' = 50.
        assert result.e1 == pytest.approx(220.0 * 50 + 90.0 * 50)

    def test_equation_16_dvfs_stretch_accounting(self):
        result = knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, 0.0, 2.0)
        # t2 = 100, t2' = 50, t_delay'' = 50.
        assert result.e2 == pytest.approx(176.0 * 50 + 90.0 * 50)

    def test_elastic_takes_the_minimum(self):
        result = knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, 25.0, 3.0)
        assert result.e_elastic == pytest.approx(min(result.e1, result.e2))

    @given(
        speedup=st.floats(min_value=1.0, max_value=100.0),
        slack=st.floats(min_value=0.0, max_value=200.0),
    )
    def test_knob_savings_never_negative(self, speedup, slack):
        """Knobs only add options, so E_elastic <= E_dvfs always."""
        result = knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, slack, speedup)
        assert result.savings >= -1e-9

    @given(
        s1=st.floats(min_value=1.0, max_value=10.0),
        s2=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_more_speedup_never_costs_energy(self, s1, s2):
        lo, hi = sorted((s1, s2))
        result_lo = knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, 20.0, lo)
        result_hi = knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, 20.0, hi)
        assert result_hi.e_elastic <= result_lo.e_elastic + 1e-9

    def test_invalid_speedup_rejected(self):
        with pytest.raises(EnergyModelError):
            knob_dvfs_energy(P_NODVFS, P_DVFS, P_IDLE, 100.0, 0.0, 0.0)
