"""Trajectory-gate tests: normalization, regression detection, CLI.

The gate's promise to CI: identical-or-faster runs pass, a slower host
is forgiven via the calibration score, a genuine 2x slowdown fails with
the regressed scenario named, and brand-new scenario kinds wait (with a
note) until the committed baseline knows about them.
"""

import json

from repro.bench.trajectory import (
    DEFAULT_TOLERANCE,
    compare_datacenter,
    compare_runtime,
    format_markdown,
    main,
    scenario_kind,
)


def dc_payload(calibration=1_000_000.0, scenarios=None):
    scenarios = scenarios if scenarios is not None else {
        "open-8m": (0.050, 400),
        "arbitrated-8m": (0.060, 440),
    }
    return {
        "calibration_ops_per_sec": calibration,
        "scenarios": [
            {
                "scenario": label,
                "events": events,
                "backends": {"serial": {"seconds": seconds}},
            }
            for label, (seconds, events) in scenarios.items()
        ],
    }


def rt_payload(calibration=1_000_000.0, items=40_000.0, beats=400_000.0,
               cached_us=0.1):
    return {
        "calibration_ops_per_sec": calibration,
        "probes": {
            "step_path": {"items_per_sec": items},
            "heartbeat_window": {"beats_per_sec": beats},
            "actuation_plan": {"cached_us_per_call": cached_us},
        },
    }


class TestScenarioKind:
    def test_kind_strips_pool_suffix(self):
        assert scenario_kind("open-128m") == "open"
        assert scenario_kind("budget_shock-4m") == "budget_shock"
        assert scenario_kind("consolidation-8m") == "consolidation"


class TestCompareDatacenter:
    def test_identical_payloads_pass(self):
        checks = compare_datacenter(dc_payload(), dc_payload())
        assert len(checks) == 2
        assert not any(check.regressed for check in checks)
        assert all(check.ratio == 1.0 for check in checks)

    def test_twice_as_slow_fails_and_names_the_scenario(self):
        fresh = dc_payload(
            scenarios={"open-8m": (0.100, 400), "arbitrated-8m": (0.060, 440)}
        )
        checks = compare_datacenter(dc_payload(), fresh)
        regressed = [check for check in checks if check.regressed]
        assert [check.name for check in regressed] == ["open-8m"]
        assert "open-8m" in regressed[0].message
        assert "REGRESSED" in regressed[0].message

    def test_slower_host_is_normalized_away(self):
        """Half-speed host: seconds double but so does the calibrated
        cost unit — no regression."""
        fresh = dc_payload(
            calibration=500_000.0,
            scenarios={"open-8m": (0.100, 400), "arbitrated-8m": (0.120, 440)},
        )
        checks = compare_datacenter(dc_payload(), fresh)
        assert not any(check.regressed for check in checks)

    def test_smaller_pool_compares_against_kind_mean(self):
        fresh = dc_payload(scenarios={"open-4m": (0.025, 200)})
        (check,) = compare_datacenter(dc_payload(), fresh)
        assert check.name == "open-4m"
        assert check.kind == "open"
        assert check.ratio == 1.0

    def test_unknown_kind_is_skipped_with_note(self):
        fresh = dc_payload(scenarios={"consolidation-4m": (0.030, 300)})
        notes = []
        checks = compare_datacenter(dc_payload(), fresh, notes=notes)
        assert checks == []
        assert any("consolidation" in note for note in notes)

    def test_missing_calibration_falls_back_to_raw_costs(self):
        baseline = dc_payload()
        del baseline["calibration_ops_per_sec"]
        notes = []
        checks = compare_datacenter(baseline, dc_payload(), notes=notes)
        assert not any(check.regressed for check in checks)
        assert any("calibration" in note for note in notes)

    def test_injected_slowdown_fails_the_gate(self):
        checks = compare_datacenter(dc_payload(), dc_payload(), slowdown=2.0)
        assert all(check.regressed for check in checks)
        assert all(check.ratio > DEFAULT_TOLERANCE for check in checks)


class TestCompareRuntime:
    def test_identical_probes_pass(self):
        checks = compare_runtime(rt_payload(), rt_payload())
        assert {check.name for check in checks} == {
            "step_path",
            "heartbeat_window",
            "actuation_plan(cached)",
        }
        assert not any(check.regressed for check in checks)

    def test_slow_probe_regresses(self):
        fresh = rt_payload(items=10_000.0)  # 4x slower step path
        checks = compare_runtime(rt_payload(), fresh)
        regressed = [check.name for check in checks if check.regressed]
        assert regressed == ["step_path"]


class TestMarkdownAndCli:
    def write_dirs(self, tmp_path, fresh_dc=None, fresh_rt=None):
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        baseline.mkdir()
        fresh.mkdir()
        (baseline / "BENCH_datacenter.json").write_text(
            json.dumps(dc_payload())
        )
        (baseline / "BENCH_runtime.json").write_text(json.dumps(rt_payload()))
        (fresh / "BENCH_datacenter.json").write_text(
            json.dumps(fresh_dc or dc_payload())
        )
        (fresh / "BENCH_runtime.json").write_text(
            json.dumps(fresh_rt or rt_payload())
        )
        return baseline, fresh

    def test_markdown_lists_every_check(self):
        checks = compare_datacenter(dc_payload(), dc_payload())
        text = format_markdown(checks, ["a note"], DEFAULT_TOLERANCE)
        assert "open-8m" in text and "arbitrated-8m" in text
        assert "a note" in text
        assert "within tolerance" in text

    def test_cli_passes_and_writes_summary(self, tmp_path, capsys):
        baseline, fresh = self.write_dirs(tmp_path)
        out = tmp_path / "TRAJECTORY.md"
        code = main(
            [
                "--baseline-dir", str(baseline),
                "--fresh-dir", str(fresh),
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "bench-trajectory OK" in capsys.readouterr().out
        assert "within tolerance" in out.read_text()

    def test_cli_injected_slowdown_fails_naming_a_scenario(
        self, tmp_path, capsys
    ):
        baseline, fresh = self.write_dirs(tmp_path)
        out = tmp_path / "TRAJECTORY.md"
        code = main(
            [
                "--baseline-dir", str(baseline),
                "--fresh-dir", str(fresh),
                "--inject-slowdown", "2.0",
                "--out", str(out),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "bench-trajectory FAILED" in captured.err
        assert "2.00x" in captured.err
        assert "REGRESSED" in out.read_text()

    def test_cli_missing_artifact_is_a_readable_error(self, tmp_path):
        baseline, fresh = self.write_dirs(tmp_path)
        (fresh / "BENCH_runtime.json").unlink()
        try:
            main(["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)])
        except SystemExit as error:
            assert "BENCH_runtime.json" in str(error)
        else:  # pragma: no cover - the exit is the contract
            raise AssertionError("missing artifact did not exit")
