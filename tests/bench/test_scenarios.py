"""Bench-scenario tests: labels, event counts, and the budget_shock run.

The bench harness trusts ``count_events`` to describe a scenario
without building it and hard-fails timed runs on the billing
conservation invariant, so both are pinned here at fast-tier scale.
"""

import math

import pytest

from repro.bench.scenarios import (
    BUDGET_WATTS_PER_MACHINE,
    SHOCK_FRACTION,
    PoolScenario,
    build_pool_engine,
    count_events,
)
from repro.datacenter.billing import CONSERVATION_TOLERANCE


class TestScenarioShape:
    def test_labels(self):
        assert PoolScenario(machines=4).label == "open-4m"
        assert PoolScenario(machines=4, arbitrated=True).label == "arbitrated-4m"
        assert (
            PoolScenario(machines=4, arbitrated=True, budget_shock=True).label
            == "budget_shock-4m"
        )

    def test_budget_schedule_only_when_shocked(self):
        assert PoolScenario(machines=2).budget_schedule() is None
        schedule = PoolScenario(
            machines=2, horizon=30.0, arbitrated=True, budget_shock=True
        ).budget_schedule()
        assert schedule is not None
        assert schedule.entries == (
            (10.0, SHOCK_FRACTION * 2 * BUDGET_WATTS_PER_MACHINE),
            (20.0, 2 * BUDGET_WATTS_PER_MACHINE),
        )

    def test_count_events_includes_schedule_barriers(self):
        open_scenario = PoolScenario(machines=2, horizon=30.0)
        arbitrated = PoolScenario(machines=2, horizon=30.0, arbitrated=True)
        shocked = PoolScenario(
            machines=2, horizon=30.0, arbitrated=True, budget_shock=True
        )
        arrivals = count_events(open_scenario)
        periodic = int(math.floor(30.0 / 10.0))
        assert count_events(arbitrated) == arrivals + periodic
        # The two schedule instants (10 s, 20 s) coincide with periodic
        # ticks at the default period, so they must not double-count.
        assert count_events(shocked) == arrivals + periodic

    def test_count_events_dedups_partial_overlap(self):
        shocked = PoolScenario(
            machines=2,
            horizon=30.0,
            arbitrated=True,
            budget_shock=True,
            control_period=7.0,
        )
        arrivals = sum(
            shocked.tenant_trace(i).count for i in range(shocked.machines)
        )
        # Periodic: 7, 14, 21, 28; schedule: 10, 20 — six distinct barriers.
        assert count_events(shocked) == arrivals + 6


class TestScaleScenario:
    def test_scale_label(self):
        assert PoolScenario(machines=1024, hier=True).label == "scale-1024m"

    def test_count_events_includes_hier_barriers(self):
        open_scenario = PoolScenario(machines=2, horizon=30.0)
        hier = PoolScenario(machines=2, horizon=30.0, hier=True)
        periodic = int(math.floor(30.0 / 10.0))
        assert count_events(hier) == count_events(open_scenario) + periodic

    def test_hier_run_conserves_energy_with_scenario_step_mode(self):
        scenario = PoolScenario(
            machines=4, horizon=12.0, hier=True, step_mode="batched"
        )
        engine = build_pool_engine(scenario, backend="serial")
        from repro.datacenter.controlplane.hierarchy import (
            HierarchicalArbiter,
        )

        # The scenario's pinned step kernel is the default; the policy
        # dispatch routed to the hierarchy.
        assert engine.step_mode == "batched"
        assert isinstance(engine.policy, HierarchicalArbiter)
        result = engine.run()
        assert result.energy_conservation_rel_error() <= CONSERVATION_TOLERANCE
        assert result.cap_history

    def test_explicit_step_mode_overrides_scenario_default(self):
        scenario = PoolScenario(
            machines=2, horizon=6.0, hier=True, step_mode="batched"
        )
        engine = build_pool_engine(
            scenario, backend="serial", step_mode="scalar"
        )
        assert engine.step_mode == "scalar"


class TestBudgetShockRun:
    def test_budget_shock_scenario_conserves_energy(self):
        scenario = PoolScenario(
            machines=2, horizon=12.0, arbitrated=True, budget_shock=True
        )
        result = build_pool_engine(scenario, backend="serial").run()
        assert result.energy_conservation_rel_error() <= CONSERVATION_TOLERANCE
        # The shock arrived and recovered.
        assert len(result.budget_history) == 3
        assert result.budget_history[1][1] == pytest.approx(
            SHOCK_FRACTION * 2 * BUDGET_WATTS_PER_MACHINE
        )
        for at, caps in result.cap_history:
            budget = next(
                watts
                for t, watts in reversed(result.budget_history)
                if t <= at
            )
            assert sum(caps) <= budget + 1e-6
