"""Drift tests tying the docs/ tree to the code it documents.

The scenario cookbook quotes the experiment catalog's help lines and
the CLI builds its subparsers from the same table, so these tests make
"CLI and docs can't drift" an enforced property instead of a hope.
"""

from pathlib import Path

from repro.experiments.__main__ import build_parser
from repro.experiments.catalog import ARTIFACTS, PER_APP_ARTIFACTS

REPO = Path(__file__).parent.parent
DOCS = REPO / "docs"


def test_docs_tree_exists():
    for name in ("ARCHITECTURE.md", "SCENARIOS.md", "BENCH.md"):
        assert (DOCS / name).is_file(), f"docs/{name} is missing"


class TestScenarioCookbook:
    def test_every_artifact_has_a_recipe(self):
        cookbook = (DOCS / "SCENARIOS.md").read_text()
        for name in ARTIFACTS:
            assert f"python -m repro.experiments {name}" in cookbook, (
                f"docs/SCENARIOS.md has no runnable recipe for {name!r}"
            )

    def test_cookbook_quotes_catalog_help_verbatim(self):
        cookbook = (DOCS / "SCENARIOS.md").read_text()
        for info in ARTIFACTS.values():
            assert info.help in cookbook, (
                f"docs/SCENARIOS.md does not quote the CLI help line for "
                f"{info.name!r}: {info.help!r}"
            )

    def test_cookbook_names_paper_artifacts(self):
        cookbook = (DOCS / "SCENARIOS.md").read_text()
        for ref in ("Table 1", "Table 2", "Figure 5", "Figure 8"):
            assert ref in cookbook


class TestCliHelp:
    def test_every_subcommand_has_nonempty_help(self):
        for info in ARTIFACTS.values():
            assert info.help.strip(), f"{info.name} has an empty help line"
            assert info.paper_ref.strip()

    def test_parser_lists_every_artifact(self):
        listing = build_parser().format_help()
        for name in ARTIFACTS:
            assert name in listing

    def test_per_app_artifacts_accept_app_flag(self):
        parser = build_parser()
        for name in ARTIFACTS:
            args = [name, "--scale", "tiny"]
            if name in PER_APP_ARTIFACTS:
                args += ["--app", "x264"]
            if name == "replay":
                # --journal is required for replay; any path parses.
                args += ["--journal", "run.ndjson"]
            parsed = parser.parse_args(args)
            assert parsed.artifact == name


class TestBenchDoc:
    def test_bench_doc_covers_schema_fields(self):
        text = (DOCS / "BENCH.md").read_text()
        for field in (
            "cpu_count",
            "sharded_note",
            "projected_parallel_seconds",
            "projected_speedup_vs_serial",
            "speedup_vs_eager",
            "conservation_rel_error",
            "events_per_sec",
            "schema_version",
        ):
            assert field in text, f"docs/BENCH.md does not document {field!r}"


def test_readme_links_the_docs_tree():
    readme = (REPO / "README.md").read_text()
    for target in ("docs/ARCHITECTURE.md", "docs/SCENARIOS.md", "docs/BENCH.md"):
        assert target in readme
