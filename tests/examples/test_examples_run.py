"""Smoke tests: the fast example scripts run end to end.

The heavier scenario examples (power_capping, server_consolidation,
search_sla) calibrate at near-paper scale and are exercised instead by
the benchmark harness, which regenerates the same artifacts; these tests
keep the cheap examples (and therefore the README's entry points) from
rotting.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_application.py",
    "controller_shootout.py",
    "race_to_idle.py",
    "datacenter_arbiter.py",
    "datacenter_billing.py",
    "datacenter_replay.py",
    "datacenter_grayfail.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_to_completion(script, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"example {script} is missing"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"example {script} produced no output"


def test_all_examples_documented_in_readme():
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in EXAMPLES.glob("*.py"):
        assert f"examples/{script.name}" in readme, (
            f"{script.name} missing from the README example table"
        )
