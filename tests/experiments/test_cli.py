"""Tests for the `python -m repro.experiments` command-line driver."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "swish++" in out

    def test_fig34(self, capsys):
        assert main(["fig34"]) == 0
        assert "Equations 12-19" in capsys.readouterr().out

    def test_fig8_with_app_and_scale(self, capsys):
        assert main(["fig8", "--app", "swaptions", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8 (swaptions)" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        assert "overhead" in capsys.readouterr().out

    def test_ablation_controllers(self, capsys):
        assert main(
            ["ablation-controllers", "--app", "swaptions", "--scale", "tiny"]
        ) == 0
        out = capsys.readouterr().out
        assert "integral (paper)" in out and "bang-bang" in out

    def test_ablation_quantum(self, capsys):
        assert main(
            ["ablation-quantum", "--app", "swaptions", "--scale", "tiny"]
        ) == 0
        assert "time quantum" in capsys.readouterr().out

    def test_sla(self, capsys):
        assert main(["sla", "--app", "swaptions", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Latency SLA" in out and "dynamic knobs" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure-99"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--app", "doom"])
