"""Integration tests for the experiment harness (all at TINY scale).

These verify that each paper artifact's experiment runs end-to-end and
produces the paper's qualitative shape; the benchmark harness reruns the
same experiments at PAPER scale.
"""

import math

import pytest

from repro.experiments import (
    APP_SPECS,
    Scale,
    built_system,
    correlation,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig34,
    format_overhead,
    format_table1,
    format_table2,
    run_consolidation,
    run_energy_models,
    run_overhead,
    run_power_qos,
    run_powercap,
    run_tradeoff,
    summarize_inputs,
)


class TestRegistry:
    def test_all_four_benchmarks_registered(self):
        assert set(APP_SPECS) == {"swaptions", "x264", "bodytrack", "swish++"}

    def test_built_system_is_cached(self):
        a = built_system("swaptions", Scale.TINY)
        b = built_system("swaptions", Scale.TINY)
        assert a is b

    def test_built_system_has_control_variables(self):
        system = built_system("swaptions", Scale.TINY)
        assert system.control_set.names == ["num_trials"]
        assert system.report.variable_count == 1


class TestCorrelation:
    def test_perfect_correlation(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_constant_series_that_agree(self):
        assert correlation([1.0, 1.0], [1.0, 1.0]) == 1.0

    def test_constant_series_that_disagree(self):
        assert correlation([1.0, 1.0], [1.0, 2.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            correlation([1.0], [1.0, 2.0])


class TestTradeoffExperiment:
    """E-F5 / E-T2 (Figure 5, Table 2)."""

    @pytest.fixture(scope="class", params=["swaptions", "swish++"])
    def experiment(self, request):
        return run_tradeoff(request.param, Scale.TINY)

    def test_pareto_frontier_is_monotone(self, experiment):
        frontier = experiment.pareto_training
        speeds = [p.speedup for p in frontier]
        losses = [p.qos_loss for p in frontier]
        assert speeds == sorted(speeds)
        assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:]))

    def test_training_predicts_production(self, experiment):
        """Table 2: correlation coefficients close to 1."""
        assert experiment.speedup_correlation > 0.95
        assert experiment.qos_correlation > 0.8

    def test_formatting_mentions_benchmark(self, experiment):
        assert experiment.name in format_fig5(experiment)
        assert "Table 2" in format_table2([experiment])

    def test_headline_speedups(self):
        swaptions = run_tradeoff("swaptions", Scale.TINY)
        assert swaptions.max_speedup > 10.0  # wide trade-off space
        swish = run_tradeoff("swish++", Scale.TINY)
        assert 1.2 < swish.max_speedup < 2.0  # ~1.5x in the paper


class TestPowerQosExperiment:
    """E-F6 (Figure 6)."""

    @pytest.fixture(scope="class")
    def experiment(self):
        return run_power_qos("swaptions", Scale.TINY)

    def test_covers_all_seven_pstates(self, experiment):
        freqs = [p.frequency_ghz for p in experiment.points]
        assert freqs == [2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6]

    def test_performance_within_five_percent_everywhere(self, experiment):
        """The paper verifies this for all power states."""
        assert all(p.within_target for p in experiment.points)

    def test_power_decreases_with_frequency(self, experiment):
        powers = [p.mean_power for p in experiment.points]
        assert all(b <= a + 1e-9 for a, b in zip(powers, powers[1:]))

    def test_qos_loss_grows_as_frequency_drops(self, experiment):
        first, last = experiment.points[0], experiment.points[-1]
        assert last.qos_loss > first.qos_loss

    def test_power_reduction_in_paper_band(self, experiment):
        """Paper: 16-21%% across the benchmarks."""
        assert 0.10 < experiment.power_reduction() < 0.30

    def test_formatting(self, experiment):
        assert "Figure 6" in format_fig6(experiment)


class TestPowerCapExperiment:
    """E-F7 (Figure 7)."""

    @pytest.fixture(scope="class")
    def experiment(self):
        return run_powercap("swaptions", Scale.TINY)

    def test_knobs_recover_capped_performance(self, experiment):
        knobs_perf, no_knobs_perf = experiment.capped_performance()
        assert knobs_perf == pytest.approx(1.0, abs=0.15)

    def test_without_knobs_performance_drops_to_frequency_ratio(
        self, experiment
    ):
        _, no_knobs_perf = experiment.capped_performance()
        assert no_knobs_perf == pytest.approx(1.6 / 2.4, abs=0.1)

    def test_gain_rises_during_cap_only(self, experiment):
        assert experiment.mean_gain_during_cap() > 1.1
        assert experiment.tail_gain() == pytest.approx(1.0, abs=0.15)

    def test_recovery_is_fast(self, experiment):
        beats = experiment.recovery_beats()
        assert 0 <= beats <= 3 * 20  # within a few control quanta

    def test_baseline_run_is_flat(self, experiment):
        perfs = [
            s.normalized_performance
            for s in experiment.baseline.samples[30:]
            if s.normalized_performance is not None
        ]
        mean = sum(perfs) / len(perfs)
        assert mean == pytest.approx(1.0, abs=0.05)

    def test_formatting(self, experiment):
        assert "Figure 7" in format_fig7(experiment)


class TestConsolidationExperiment:
    """E-F8 (Figure 8)."""

    @pytest.fixture(scope="class")
    def experiment(self):
        return run_consolidation("swaptions", Scale.TINY)

    def test_parsec_provisioning_shrinks_four_to_one(self, experiment):
        assert experiment.original_machines == 4
        assert experiment.consolidated_machines == 1

    def test_power_savings_at_quarter_utilization(self, experiment):
        """Paper: ~66%% saved at 25%% utilization for PARSEC benchmarks."""
        _, fraction = experiment.savings_at(0.25)
        assert 0.4 < fraction < 0.8

    def test_power_savings_at_peak(self, experiment):
        """Paper: ~75%% less power at 100%% utilization."""
        _, fraction = experiment.savings_at(1.0)
        assert 0.6 < fraction < 0.85

    def test_qos_loss_bounded_and_rising(self, experiment):
        losses = [p.qos_loss for p in experiment.points]
        assert losses[0] == 0.0
        assert experiment.peak_qos_loss() <= experiment.qos_bound + 1e-9
        assert losses[-1] >= max(losses[:-1]) - 1e-9

    def test_performance_preserved(self, experiment):
        assert all(p.performance_factor > 0.95 for p in experiment.points)

    def test_formatting(self, experiment):
        assert "Figure 8" in format_fig8(experiment)


class TestInputsTable:
    """E-T1 (Table 1)."""

    def test_summarizes_all_benchmarks(self):
        summaries = summarize_inputs(Scale.TINY)
        assert {s.name for s in summaries} == set(APP_SPECS)
        assert all(s.training_units > 0 for s in summaries)
        assert all(s.production_units > 0 for s in summaries)

    def test_formatting(self):
        text = format_table1(summarize_inputs(Scale.TINY))
        assert "Table 1" in text and "swish++" in text


class TestEnergyModels:
    """E-F3/F4 (Figures 3-4)."""

    def test_grid_is_complete(self):
        scenarios = run_energy_models()
        assert len(scenarios) == 4 * 3

    def test_knob_savings_grow_with_speedup(self):
        scenarios = [
            s for s in run_energy_models() if s.slack_fraction == 0.0
        ]
        savings = [s.result.savings for s in scenarios]
        assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))

    def test_formatting(self):
        assert "Equations 12-19" in format_fig34(run_energy_models())


class TestOverhead:
    """E-S51 (Section 5.1)."""

    def test_modeled_overhead_is_insignificant(self):
        """The control system adds no virtual time on an uncapped run
        (a noise-induced knob nudge can only make it faster)."""
        result = run_overhead("swaptions", Scale.TINY)
        assert result.modeled_overhead <= 1e-9
        assert result.modeled_overhead > -0.05
        assert not math.isnan(result.modeled_overhead)

    def test_formatting(self):
        result = run_overhead("swaptions", Scale.TINY)
        assert "overhead" in format_overhead([result])
