"""Tests for the controller and time-quantum ablation experiments."""

import pytest

from repro.experiments.common import Scale
from repro.experiments.controllers import (
    format_controller_ablation,
    run_controller_ablation,
)
from repro.experiments.quantum import (
    format_quantum_ablation,
    run_quantum_ablation,
)


@pytest.fixture(scope="module")
def controller_ablation():
    return run_controller_ablation("swaptions", Scale.TINY, steps=200)


@pytest.fixture(scope="module")
def quantum_ablation():
    return run_quantum_ablation("swaptions", Scale.TINY, quanta=(5, 20))


class TestControllerAblation:
    def test_all_four_families_scored(self, controller_ablation):
        labels = [result.label for result in controller_ablation.results]
        assert labels == [
            "integral (paper)",
            "pid",
            "heuristic step",
            "bang-bang",
        ]

    def test_integral_settles_fast_after_cap(self, controller_ablation):
        integral = controller_ablation.result("integral (paper)")
        assert integral.settle_after_cap is not None
        assert integral.settle_after_cap <= 10

    def test_bang_bang_never_settles_under_cap(self, controller_ablation):
        assert controller_ablation.result("bang-bang").settle_after_cap is None

    def test_integral_has_lowest_itae(self, controller_ablation):
        integral = controller_ablation.result("integral (paper)")
        for other in controller_ablation.results:
            assert integral.evaluation.itae <= other.evaluation.itae + 1e-9

    def test_qos_losses_are_finite_and_bounded(self, controller_ablation):
        for result in controller_ablation.results:
            assert 0.0 <= result.mean_qos_loss < 1.0

    def test_unknown_label_raises(self, controller_ablation):
        with pytest.raises(KeyError):
            controller_ablation.result("fuzzy logic")

    def test_format_lists_every_controller(self, controller_ablation):
        text = format_controller_ablation(controller_ablation)
        for result in controller_ablation.results:
            assert result.label in text
        assert "ITAE" in text

    def test_noise_variant_runs(self):
        ablation = run_controller_ablation(
            "swaptions", Scale.TINY, steps=120, noise_sigma=0.02
        )
        integral = ablation.result("integral (paper)")
        # Still tracks through the cap despite sensor noise.
        assert integral.evaluation.mean_abs_error < 0.10


class TestQuantumAblation:
    def test_results_per_quantum(self, quantum_ablation):
        assert [r.quantum_beats for r in quantum_ablation.results] == [5, 20]

    def test_all_quanta_recover(self, quantum_ablation):
        for result in quantum_ablation.results:
            assert result.recovery_beats >= 0

    def test_capped_performance_reasonable(self, quantum_ablation):
        for result in quantum_ablation.results:
            assert result.capped_performance > 0.7

    def test_switches_counted(self, quantum_ablation):
        for result in quantum_ablation.results:
            assert result.setting_switches >= 1

    def test_unknown_quantum_raises(self, quantum_ablation):
        with pytest.raises(KeyError):
            quantum_ablation.result(13)

    def test_empty_quanta_rejected(self):
        with pytest.raises(ValueError):
            run_quantum_ablation("swaptions", Scale.TINY, quanta=())

    def test_format_contains_rows(self, quantum_ablation):
        text = format_quantum_ablation(quantum_ablation)
        assert "quantum (beats)" in text
        assert "5" in text and "20" in text
