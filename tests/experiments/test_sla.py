"""Tests for the latency-SLA experiment (Section 3)."""

import pytest

from repro.experiments.common import Scale
from repro.experiments.sla import format_sla, run_sla


@pytest.fixture(scope="module")
def experiment():
    return run_sla("swaptions", Scale.TINY, duration=240.0)


class TestSlaExperiment:
    def test_three_series(self, experiment):
        labels = [series.label for series in experiment.series]
        assert labels == [
            "uncapped reference",
            "capped, no knobs",
            "capped, dynamic knobs",
        ]

    def test_cap_spans_middle_half(self, experiment):
        assert experiment.cap_start == pytest.approx(60.0)
        assert experiment.cap_end == pytest.approx(180.0)

    def test_no_knobs_violates_sla(self, experiment):
        no_knobs = experiment.series_by_label("capped, no knobs")
        reference = experiment.series_by_label("uncapped reference")
        assert no_knobs.stats.p95 > 5.0 * reference.stats.p95
        assert no_knobs.violation_fraction > 0.2

    def test_knobs_preserve_latency(self, experiment):
        knobs = experiment.series_by_label("capped, dynamic knobs")
        reference = experiment.series_by_label("uncapped reference")
        assert knobs.stats.p95 < 2.0 * reference.stats.p95

    def test_knobs_pay_in_qos(self, experiment):
        knobs = experiment.series_by_label("capped, dynamic knobs")
        assert knobs.mean_qos_loss > 0.0
        reference = experiment.series_by_label("uncapped reference")
        assert reference.mean_qos_loss == 0.0

    def test_unknown_label_raises(self, experiment):
        with pytest.raises(KeyError):
            experiment.series_by_label("magic")

    def test_format_contains_all_series(self, experiment):
        text = format_sla(experiment)
        for series in experiment.series:
            assert series.label in text
        assert "SLA" in text
