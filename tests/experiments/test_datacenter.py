"""Tests for the datacenter experiment and its CLI entry (tiny scale)."""

import json

import pytest

from repro.datacenter import CONSERVATION_TOLERANCE, fork_available
from repro.experiments import Scale, format_datacenter, run_datacenter
from repro.experiments.__main__ import main
from repro.experiments.datacenter import (
    billing_payload,
    default_tenant_mix,
    format_datacenter_bills,
)


@pytest.fixture(scope="module")
def experiment():
    return run_datacenter(Scale.TINY)


class TestRunDatacenter:
    def test_both_policies_within_budget(self, experiment):
        assert experiment.static.total_mean_power <= experiment.budget_watts
        assert experiment.arbitrated.total_mean_power <= experiment.budget_watts

    def test_identical_offered_load_across_policies(self, experiment):
        """Both policies must see the very same arrival traces."""
        for static, arbitrated in zip(
            experiment.static.tenant_reports,
            experiment.arbitrated.tenant_reports,
        ):
            assert static.name == arbitrated.name
            assert static.offered == arbitrated.offered

    def test_arbiter_improves_a_tenant(self, experiment):
        name, delta = experiment.best_improvement()
        assert delta > 0.0
        assert experiment.arbitrated.slas_met() >= experiment.static.slas_met()

    def test_scenario_shape(self, experiment):
        assert len(experiment.tenants) >= 3
        assert experiment.machines >= 2
        machine_indices = {t.machine_index for t in experiment.tenants}
        assert len(machine_indices) >= 2

    def test_caps_recorded_every_period(self, experiment):
        times = [t for t, _ in experiment.arbitrated.cap_history]
        assert times[0] == 0.0
        assert len(times) >= experiment.horizon / 10.0

    def test_mix_has_a_knob_poor_tenant(self):
        assert any(t.qos_cap == 0.0 for t in default_tenant_mix())


class TestFormat:
    def test_format_mentions_every_tenant(self, experiment):
        text = format_datacenter(experiment)
        for tenant in experiment.tenants:
            assert tenant.name in text
        assert "SLAs met" in text
        assert "budget" in text

    def test_cli_runs_tiny_scenario(self, capsys):
        assert main(["datacenter", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Datacenter arbitration" in out
        assert "sla-aware" in out

    def test_cli_rejects_backend_on_other_artifacts(self):
        with pytest.raises(SystemExit):
            main(["table1", "--backend", "sharded"])
        with pytest.raises(SystemExit):
            main(["fig34", "--bill"])
        with pytest.raises(SystemExit):
            main(["table2", "--policy", "migrating"])
        with pytest.raises(SystemExit):
            main(["fig34", "--budget-trace", "x.trace"])

    def test_cli_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["datacenter", "--policy", "round-robin"])


class TestControlPlaneCli:
    def test_static_equal_policy_keeps_both_billing_sides(self):
        from repro.experiments.datacenter import billing_payload

        experiment = run_datacenter(Scale.TINY, policy="static-equal")
        payload = billing_payload(experiment)
        assert set(payload["policies"]) == {
            "static-equal",
            "static-equal-rerun",
        }

    def test_cli_policy_migrating_runs(self, capsys):
        assert main(["datacenter", "--scale", "tiny", "--policy", "migrating"]) == 0
        out = capsys.readouterr().out
        assert "att migrating" in out

    def test_cli_budget_trace_drives_the_budget(self, capsys, tmp_path):
        trace = tmp_path / "shock.trace"
        # Two machines: floor ~366 W, so both levels are enforceable.
        trace.write_text("0 420\n15 390\n30 420\n")
        assert main(
            ["datacenter", "--scale", "tiny", "--budget-trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "budget trace: 420 W@0s -> 390 W@15s -> 420 W@30s" in out

    def test_cli_budget_trace_parse_error_is_actionable(self, capsys, tmp_path):
        trace = tmp_path / "bad.trace"
        trace.write_text("0 420\n0 390\n")
        assert main(["datacenter", "--budget-trace", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "does not increase" in err

    def test_cli_budget_trace_floor_error_is_actionable(self, capsys, tmp_path):
        trace = tmp_path / "low.trace"
        trace.write_text("0 100\n")
        assert main(
            ["datacenter", "--scale", "tiny", "--budget-trace", str(trace)]
        ) == 2
        err = capsys.readouterr().err
        assert "below the fleet-wide cap floor" in err


class TestFaultsCli:
    def test_cli_faults_runs_and_reports_injection(self, capsys, tmp_path):
        plan = tmp_path / "gray.faults"
        plan.write_text(
            "config seed=11 unresponsive_after=4 reintegrate=5\n"
            "sensor machine=0 start=8 end=16 mode=dropout\n"
            "actuator machine=1 start=10 end=22 mode=drop\n"
            "straggler machine=0 start=24 end=30\n"
        )
        assert main(
            ["datacenter", "--scale", "tiny", "--faults", str(plan)]
        ) == 0
        out = capsys.readouterr().out
        assert "gray faults injected" in out
        assert "applier retries" in out

    def test_cli_faults_parse_error_names_path_line_and_field(
        self, capsys, tmp_path
    ):
        plan = tmp_path / "bad.faults"
        plan.write_text("sensor machine=0 start=2 end=6\nkill when=9\n")
        assert main(["datacenter", "--faults", str(plan)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert str(plan) in err
        assert "line 2" in err and "'when'" in err

    def test_cli_faults_bad_value_names_field(self, capsys, tmp_path):
        plan = tmp_path / "bad.faults"
        plan.write_text("straggler machine=0 start=later end=9\n")
        assert main(["datacenter", "--faults", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err and "'start'" in err

    def test_cli_faults_missing_file_names_path(self, capsys, tmp_path):
        missing = tmp_path / "nope.faults"
        assert main(["datacenter", "--faults", str(missing)]) == 2
        err = capsys.readouterr().err
        assert str(missing) in err and "cannot read fault plan" in err

    def test_cli_faults_rejected_on_other_artifacts(self):
        with pytest.raises(SystemExit):
            main(["fig34", "--faults", "x.faults"])


class TestBilling:
    def test_billing_payload_conserves_energy(self, experiment):
        payload = billing_payload(experiment)
        assert set(payload["policies"]) == {"static-equal", "sla-aware"}
        for policy in payload["policies"].values():
            conservation = policy["energy_conservation"]
            assert conservation["rel_error"] <= CONSERVATION_TOLERANCE
            billed = sum(b["energy_joules"] for b in policy["bills"])
            assert billed == conservation["billed_energy_joules"]
        names = {b["tenant"] for b in payload["policies"]["sla-aware"]["bills"]}
        assert names == {t.name for t in experiment.tenants}

    def test_format_is_valid_deterministic_json(self, experiment):
        text = format_datacenter_bills(experiment)
        parsed = json.loads(text)
        assert parsed["artifact"] == "datacenter-billing"
        assert text == format_datacenter_bills(experiment)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_cli_bill_json_identical_across_backends(self, capsys):
        """The acceptance contract: serial and sharded emit the same bill."""
        assert main(["datacenter", "--scale", "tiny", "--bill"]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            ["datacenter", "--scale", "tiny", "--bill", "--backend", "sharded",
             "--workers", "2"]
        ) == 0
        sharded_out = capsys.readouterr().out
        assert serial_out == sharded_out
        document = json.loads(serial_out)
        for policy in document["policies"].values():
            assert (
                policy["energy_conservation"]["rel_error"]
                <= CONSERVATION_TOLERANCE
            )
