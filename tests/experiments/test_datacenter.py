"""Tests for the datacenter experiment and its CLI entry (tiny scale)."""

import pytest

from repro.experiments import Scale, format_datacenter, run_datacenter
from repro.experiments.__main__ import main
from repro.experiments.datacenter import default_tenant_mix


@pytest.fixture(scope="module")
def experiment():
    return run_datacenter(Scale.TINY)


class TestRunDatacenter:
    def test_both_policies_within_budget(self, experiment):
        assert experiment.static.total_mean_power <= experiment.budget_watts
        assert experiment.arbitrated.total_mean_power <= experiment.budget_watts

    def test_identical_offered_load_across_policies(self, experiment):
        """Both policies must see the very same arrival traces."""
        for static, arbitrated in zip(
            experiment.static.tenant_reports,
            experiment.arbitrated.tenant_reports,
        ):
            assert static.name == arbitrated.name
            assert static.offered == arbitrated.offered

    def test_arbiter_improves_a_tenant(self, experiment):
        name, delta = experiment.best_improvement()
        assert delta > 0.0
        assert experiment.arbitrated.slas_met() >= experiment.static.slas_met()

    def test_scenario_shape(self, experiment):
        assert len(experiment.tenants) >= 3
        assert experiment.machines >= 2
        machine_indices = {t.machine_index for t in experiment.tenants}
        assert len(machine_indices) >= 2

    def test_caps_recorded_every_period(self, experiment):
        times = [t for t, _ in experiment.arbitrated.cap_history]
        assert times[0] == 0.0
        assert len(times) >= experiment.horizon / 10.0

    def test_mix_has_a_knob_poor_tenant(self):
        assert any(t.qos_cap == 0.0 for t in default_tenant_mix())


class TestFormat:
    def test_format_mentions_every_tenant(self, experiment):
        text = format_datacenter(experiment)
        for tenant in experiment.tenants:
            assert tenant.name in text
        assert "SLAs met" in text
        assert "budget" in text

    def test_cli_runs_tiny_scenario(self, capsys):
        assert main(["datacenter", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Datacenter arbitration" in out
        assert "sla-aware" in out
