"""Tests for load-profile replay against two deployments."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.replay import replay_profile
from repro.cluster.system import ClusterSpec
from repro.cluster.workload import LoadProfile, spiky_profile
from repro.core.knobs import KnobConfiguration, KnobSetting, KnobTable


TABLE = KnobTable(
    [
        KnobSetting(KnobConfiguration({"k": 0}), 1.0, 0.0),
        KnobSetting(KnobConfiguration({"k": 1}), 2.0, 0.02),
        KnobSetting(KnobConfiguration({"k": 2}), 4.0, 0.08),
    ]
)

ORIGINAL = ClusterSpec(machines=4, slots_per_machine=8)
CONSOLIDATED = ClusterSpec(machines=1, slots_per_machine=8)


class TestReplay:
    def test_flat_low_load_saves_idle_energy_with_zero_loss(self):
        profile = LoadProfile(utilizations=(0.25,) * 10, epoch_seconds=60.0)
        result = replay_profile(ORIGINAL, CONSOLIDATED, TABLE, profile)
        assert result.energy_savings_fraction > 0.4
        assert result.worst_qos_loss == 0.0
        assert result.oversubscribed_epochs == 0

    def test_spikes_cost_qos_but_not_capacity(self):
        profile = LoadProfile(
            utilizations=(0.25, 0.25, 1.0, 0.25), epoch_seconds=60.0
        )
        result = replay_profile(ORIGINAL, CONSOLIDATED, TABLE, profile)
        assert result.oversubscribed_epochs == 1
        # Peak on 1 machine = ratio 4 -> the 4x setting's loss.
        assert result.worst_qos_loss == pytest.approx(0.08)

    def test_energy_accounting_matches_hand_computation(self):
        profile = LoadProfile(utilizations=(0.0,), epoch_seconds=100.0)
        result = replay_profile(ORIGINAL, CONSOLIDATED, TABLE, profile)
        assert result.original_energy_joules == pytest.approx(4 * 90.0 * 100.0)
        assert result.consolidated_energy_joules == pytest.approx(90.0 * 100.0)

    def test_mean_loss_is_load_weighted(self):
        profile = LoadProfile(utilizations=(1.0, 0.1), epoch_seconds=1.0)
        result = replay_profile(ORIGINAL, CONSOLIDATED, TABLE, profile)
        # Spike epoch carries most of the load weight.
        expected = (0.08 * 32 + 0.0 * 3.2) / (32 + 3.2)
        assert result.mean_qos_loss == pytest.approx(expected)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_savings_never_negative_on_spiky_days(self, seed):
        profile = spiky_profile(epochs=24, seed=seed)
        result = replay_profile(ORIGINAL, CONSOLIDATED, TABLE, profile)
        assert result.energy_savings_fraction >= 0.0
        assert 0.0 <= result.worst_qos_loss <= 0.08 + 1e-12
