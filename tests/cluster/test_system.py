"""Tests for the cluster serving-system model."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.system import (
    ClusterError,
    ClusterSpec,
    evaluate_system,
    place_instances,
)
from repro.cluster.workload import LoadProfile, spiky_profile, utilization_sweep
from repro.core.knobs import KnobConfiguration, KnobSetting, KnobTable


TABLE = KnobTable(
    [
        KnobSetting(KnobConfiguration({"k": 0}), 1.0, 0.0),
        KnobSetting(KnobConfiguration({"k": 1}), 2.0, 0.02),
        KnobSetting(KnobConfiguration({"k": 2}), 4.0, 0.08),
    ]
)


class TestPlacement:
    def test_even_split(self):
        assert place_instances(8, 4) == [2, 2, 2, 2]

    def test_remainder_spread(self):
        assert place_instances(10, 4) == [3, 3, 2, 2]

    def test_zero_instances(self):
        assert place_instances(0, 3) == [0, 0, 0]

    @given(
        instances=st.integers(min_value=0, max_value=500),
        machines=st.integers(min_value=1, max_value=32),
    )
    def test_placement_is_proportional(self, instances, machines):
        placement = place_instances(instances, machines)
        assert sum(placement) == instances
        assert max(placement) - min(placement) <= 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ClusterError):
            place_instances(-1, 2)
        with pytest.raises(ClusterError):
            place_instances(1, 0)


class TestEvaluateSystem:
    def setup_method(self):
        self.spec = ClusterSpec(machines=4, slots_per_machine=8)

    def test_idle_pool_draws_idle_power(self):
        point = evaluate_system(self.spec, 0)
        assert point.power_watts == pytest.approx(4 * 90.0)
        assert point.qos_loss == 0.0

    def test_peak_pool_draws_peak_power(self):
        point = evaluate_system(self.spec, 32)
        assert point.power_watts == pytest.approx(4 * 220.0)
        assert point.qos_loss == 0.0

    def test_baseline_oversubscription_rejected(self):
        with pytest.raises(ClusterError):
            evaluate_system(self.spec, 33)

    def test_knobbed_pool_absorbs_oversubscription(self):
        small = ClusterSpec(machines=1, slots_per_machine=8)
        point = evaluate_system(small, 16, table=TABLE)
        assert point.max_required_speedup == pytest.approx(2.0)
        assert point.qos_loss == pytest.approx(0.02)
        assert point.performance_factor == 1.0

    def test_blended_ratio_uses_actuator_plan(self):
        small = ClusterSpec(machines=1, slots_per_machine=8)
        point = evaluate_system(small, 12, table=TABLE)  # ratio 1.5
        # Actuator blends 2x with baseline: work-weighted loss 2*.02/3.
        assert point.qos_loss == pytest.approx(2 * 0.02 / 3)

    def test_saturation_costs_performance(self):
        small = ClusterSpec(machines=1, slots_per_machine=8)
        point = evaluate_system(small, 48, table=TABLE)  # ratio 6 > s_max 4
        assert point.performance_factor == pytest.approx(4.0 / 6.0)
        assert point.qos_loss == pytest.approx(0.08)

    def test_fractional_load_supported(self):
        point = evaluate_system(self.spec, 16.5)
        assert 4 * 90.0 < point.power_watts < 4 * 220.0

    def test_negative_load_rejected(self):
        with pytest.raises(ClusterError):
            evaluate_system(self.spec, -1.0)

    @given(load=st.floats(min_value=0.0, max_value=32.0))
    def test_power_monotone_in_load(self, load):
        lighter = evaluate_system(self.spec, load)
        heavier = evaluate_system(self.spec, min(32.0, load + 1.0))
        assert heavier.power_watts >= lighter.power_watts - 1e-9

    def test_invalid_spec_rejected(self):
        with pytest.raises(ClusterError):
            ClusterSpec(machines=0, slots_per_machine=8)
        with pytest.raises(ClusterError):
            ClusterSpec(machines=1, slots_per_machine=0)


class TestWorkloads:
    def test_sweep_covers_unit_interval(self):
        sweep = utilization_sweep(11)
        assert sweep[0] == 0.0 and sweep[-1] == 1.0
        assert len(sweep) == 11

    def test_sweep_needs_two_points(self):
        with pytest.raises(ValueError):
            utilization_sweep(1)

    def test_spiky_profile_statistics(self):
        profile = spiky_profile(epochs=200, seed=3)
        assert profile.peak == 1.0
        assert 0.15 < profile.mean < 0.45  # mostly low utilization

    def test_spiky_profile_deterministic(self):
        assert (
            spiky_profile(epochs=20, seed=9).utilizations
            == spiky_profile(epochs=20, seed=9).utilizations
        )

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LoadProfile(utilizations=())
        with pytest.raises(ValueError):
            LoadProfile(utilizations=(1.5,))
        with pytest.raises(ValueError):
            LoadProfile(utilizations=(0.5,), epoch_seconds=0.0)
        with pytest.raises(ValueError):
            spiky_profile(spike_probability=1.5)
