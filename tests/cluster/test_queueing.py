"""Tests for the request-queueing substrate (Section 3 latency SLAs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.queueing import (
    QueueingError,
    QueueResult,
    RequestRecord,
    poisson_arrivals,
    simulate_queue,
)
from repro.core.controller import HeartRateController
from repro.core.knobs import KnobConfiguration, KnobSetting, KnobTable


def make_table(points=((1.0, 0.0), (1.5, 0.1), (2.0, 0.25))):
    return KnobTable(
        [
            KnobSetting(
                configuration=KnobConfiguration({"k": index}),
                speedup=speedup,
                qos_loss=loss,
            )
            for index, (speedup, loss) in enumerate(points)
        ]
    )


def uniform_arrivals(rate, duration):
    gap = 1.0 / rate
    return [gap * (i + 1) for i in range(int(duration * rate) - 1)]


class TestPoissonArrivals:
    def test_mean_rate_approximately_correct(self):
        arrivals = poisson_arrivals(rate=50.0, duration=100.0, seed=1)
        assert len(arrivals) == pytest.approx(5000, rel=0.1)

    def test_sorted_and_within_duration(self):
        arrivals = poisson_arrivals(rate=20.0, duration=10.0, seed=2)
        assert arrivals == sorted(arrivals)
        assert all(0.0 < a < 10.0 for a in arrivals)

    def test_reproducible(self):
        assert poisson_arrivals(5.0, 10.0, seed=3) == poisson_arrivals(
            5.0, 10.0, seed=3
        )

    def test_validation(self):
        with pytest.raises(QueueingError):
            poisson_arrivals(0.0, 10.0)
        with pytest.raises(QueueingError):
            poisson_arrivals(1.0, 0.0)


class TestQueueMechanics:
    def test_empty_queue_serves_immediately(self):
        result = simulate_queue(
            [1.0, 5.0], base_service_time=0.5, capacity=lambda t: 1.0
        )
        first, second = result.records
        assert first.start == 1.0
        assert first.finish == 1.5
        assert second.start == 5.0  # server idle in between

    def test_busy_server_queues_fifo(self):
        result = simulate_queue(
            [0.0, 0.1, 0.2], base_service_time=1.0, capacity=lambda t: 1.0
        )
        starts = [r.start for r in result.records]
        assert starts == [0.0, 1.0, 2.0]
        assert all(r.start >= r.arrival for r in result.records)

    def test_capacity_stretches_service(self):
        result = simulate_queue(
            [0.0], base_service_time=1.0, capacity=lambda t: 0.5
        )
        assert result.records[0].latency == pytest.approx(2.0)

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(QueueingError):
            simulate_queue([1.0, 0.5], 1.0, lambda t: 1.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(QueueingError):
            simulate_queue([0.0], 1.0, lambda t: 0.0)

    def test_invalid_parameters(self):
        with pytest.raises(QueueingError):
            simulate_queue([0.0], 0.0, lambda t: 1.0)
        with pytest.raises(QueueingError):
            simulate_queue([0.0], 1.0, lambda t: 1.0, control_period=0.0)


class TestStats:
    def result(self):
        records = [
            RequestRecord(0.0, 0.0, 1.0, 1.0, 0.0),
            RequestRecord(1.0, 1.0, 3.0, 1.0, 0.1),
            RequestRecord(2.0, 3.0, 6.0, 1.0, 0.2),
        ]
        return QueueResult(records=records)

    def test_latency_stats(self):
        stats = self.result().latency_stats()
        assert stats.mean == pytest.approx((1.0 + 2.0 + 4.0) / 3)
        assert stats.worst == pytest.approx(4.0)
        assert stats.p50 == pytest.approx(2.0)

    def test_sla_violations(self):
        assert self.result().sla_violation_fraction(1.5) == pytest.approx(2 / 3)
        assert self.result().sla_violation_fraction(10.0) == 0.0

    def test_mean_qos_loss(self):
        assert self.result().mean_qos_loss() == pytest.approx(0.1)

    def test_throughput(self):
        assert self.result().throughput() == pytest.approx(3 / 6.0)

    def test_empty_result_raises(self):
        empty = QueueResult(records=[])
        with pytest.raises(QueueingError):
            empty.latency_stats()
        with pytest.raises(QueueingError):
            empty.sla_violation_fraction(1.0)
        with pytest.raises(QueueingError):
            empty.mean_qos_loss()

    def test_invalid_sla_threshold(self):
        with pytest.raises(QueueingError):
            self.result().sla_violation_fraction(0.0)


class TestControlledQueue:
    """The Section 3 argument: a power cap violates the SLA without
    knobs; PowerDial's controller defends it by trading QoS."""

    RATE = 8.0  # requests/second offered
    SERVICE = 0.11  # seconds -> utilization 0.88 uncapped
    CAP = lambda self, t: (1.6 / 2.4) if 60.0 <= t < 180.0 else 1.0

    def run(self, with_knobs):
        arrivals = poisson_arrivals(self.RATE, 240.0, seed=11)
        controller = None
        table = None
        if with_knobs:
            table = make_table()
            # Target = busy-normalized baseline service rate.
            service_rate = 1.0 / self.SERVICE
            controller = HeartRateController(
                target_rate=service_rate,
                baseline_rate=service_rate,
                max_speedup=table.max_speedup,
            )
        return simulate_queue(
            arrivals,
            base_service_time=self.SERVICE,
            capacity=self.CAP,
            controller=controller,
            table=table,
            control_period=2.0,
        )

    def uncapped_reference(self):
        """The same arrival stream on an uncapped knob-less server."""
        arrivals = poisson_arrivals(self.RATE, 240.0, seed=11)
        return simulate_queue(
            arrivals, base_service_time=self.SERVICE, capacity=lambda t: 1.0
        )

    def test_cap_without_knobs_blows_up_latency(self):
        result = self.run(with_knobs=False)
        reference = self.uncapped_reference()
        # Capped service rate ~6.1/s < offered 8/s: the queue diverges
        # for two minutes and p95 latency explodes past any sane SLA.
        assert result.latency_stats().p95 > 10.0
        assert result.latency_stats().p95 > 5.0 * reference.latency_stats().p95
        assert result.sla_violation_fraction(1.0) > 0.3

    def test_cap_with_knobs_preserves_sla(self):
        """With knobs the capped system's latency distribution matches
        the uncapped reference: the cap is absorbed by QoS, not latency."""
        result = self.run(with_knobs=True)
        reference = self.uncapped_reference()
        assert result.latency_stats().p95 < 1.5 * reference.latency_stats().p95
        assert result.sla_violation_fraction(1.0) < (
            reference.sla_violation_fraction(1.0) + 0.05
        )

    def test_knobs_cost_qos_only_during_cap(self):
        result = self.run(with_knobs=True)
        before = [r for r in result.records if r.finish < 60.0]
        during = [r for r in result.records if 70.0 <= r.finish < 180.0]
        mean_before = sum(r.qos_loss for r in before) / len(before)
        mean_during = sum(r.qos_loss for r in during) / len(during)
        # Measurement jitter may nudge the blend slightly off baseline
        # before the cap; the real QoS price arrives with the cap.
        assert mean_before < 0.02
        assert mean_during > 5.0 * mean_before
        assert mean_during > 0.05

    def test_throughput_recovers_offered_rate(self):
        result = self.run(with_knobs=True)
        assert result.throughput() == pytest.approx(self.RATE, rel=0.1)


@given(
    rate=st.floats(min_value=1.0, max_value=20.0),
    service=st.floats(min_value=0.001, max_value=0.04),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_conservation_properties(rate, service, seed):
    """Property: FIFO order, no time travel, work conservation."""
    arrivals = poisson_arrivals(rate, 20.0, seed=seed)
    if not arrivals:
        return
    result = simulate_queue(arrivals, service, lambda t: 1.0)
    previous_finish = 0.0
    for record in result.records:
        assert record.start >= record.arrival - 1e-12
        assert record.start >= previous_finish - 1e-12  # single server
        assert record.finish == pytest.approx(record.start + service)
        previous_finish = record.finish


@given(rho=st.floats(min_value=0.1, max_value=0.7))
@settings(max_examples=15, deadline=None)
def test_stable_queue_latency_bounded(rho):
    """Property: below saturation, mean latency stays within a small
    multiple of the M/D/1 prediction."""
    service = 0.05
    rate = rho / service
    arrivals = poisson_arrivals(rate, 200.0, seed=7)
    result = simulate_queue(arrivals, service, lambda t: 1.0)
    # M/D/1: W = s + s * rho / (2 (1 - rho)).
    predicted = service + service * rho / (2.0 * (1.0 - rho))
    assert result.latency_stats().mean < 3.0 * predicted + 1e-9
