"""Cross-layer validation: the Figure 8 closed form vs a behaving system.

The consolidation sweep evaluates oversubscribed machines analytically
(actuator plan at the oversubscription ratio).  Here we run an actual
PowerDial runtime on a load_factor-degraded machine and check that the
closed form predicted both the throughput and the knob response.
"""

import pytest

from repro.cluster.system import ClusterSpec, evaluate_system, simulate_instance
from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.hardware.machine import Machine
from tests.core.toyapp import ToyApp, toy_jobs


@pytest.fixture(scope="module")
def system():
    return build_powerdial(ToyApp, toy_jobs())


class TestClosedFormMatchesSimulation:
    def test_oversubscribed_instance_holds_target(self, system):
        """ratio 2: the real runtime must deliver the target rate that the
        closed form assumes it delivers."""
        oversubscription = 2.0
        reference = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], reference)

        def runtime_factory(machine):
            return system.runtime(machine, target_rate=target)

        jobs = toy_jobs(count=1, items=400, seed=5)
        result = simulate_instance(runtime_factory, jobs, oversubscription)
        global_rate = (len(result.samples) - 1) / result.elapsed
        assert global_rate == pytest.approx(target, rel=0.08)

    def test_simulated_knob_usage_matches_plan(self, system):
        """The time-share of non-baseline settings approximates the
        actuator plan the closed form evaluated."""
        from repro.core.actuator import Actuator

        oversubscription = 2.0
        reference = Machine()
        target = measure_baseline_rate(ToyApp, toy_jobs()[0], reference)
        jobs = toy_jobs(count=1, items=600, seed=6)
        result = simulate_instance(
            lambda m: system.runtime(m, target_rate=target),
            jobs,
            oversubscription,
        )
        # Post-convergence gains: the *dominant* boosted setting matches
        # the closed-form plan (transient overshoot may briefly touch the
        # next-faster setting, which is legitimate actuator behavior).
        samples = result.samples[100:]
        boosted = [s.knob_gain for s in samples if s.knob_gain > 1.0]
        assert boosted, "knobs never engaged under oversubscription"
        plan = Actuator(system.table).plan(oversubscription)
        planned_speeds = {seg.speedup for seg in plan.segments}
        dominant = max(set(boosted), key=boosted.count)
        assert dominant in planned_speeds
        assert set(boosted) <= {s.speedup for s in system.table}

    def test_closed_form_rejects_invalid_oversubscription(self, system):
        with pytest.raises(Exception):
            simulate_instance(lambda m: None, [], 0.5)

    def test_closed_form_power_is_bounded_by_machine_extremes(self, system):
        spec = ClusterSpec(machines=2, slots_per_machine=8)
        for load in (0.0, 4.0, 8.0, 16.0):
            point = evaluate_system(spec, load, table=system.table)
            assert 2 * 90.0 - 1e-9 <= point.power_watts <= 2 * 220.0 + 1e-9
