"""Unit tests for the Application Heartbeats API."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.clock import VirtualClock
from repro.heartbeats.api import HeartbeatError, HeartbeatMonitor


def beat_at_intervals(monitor, clock, intervals):
    monitor.heartbeat()
    for interval in intervals:
        clock.advance(interval)
        monitor.heartbeat()


class TestHeartbeatEmission:
    def test_records_sequence_and_timestamp(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock)
        first = monitor.heartbeat()
        clock.advance(0.5)
        second = monitor.heartbeat(tag="frame-1")
        assert first.sequence == 0 and first.timestamp == 0.0
        assert second.sequence == 1 and second.timestamp == 0.5
        assert second.tag == "frame-1"

    def test_count_tracks_beats(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock)
        beat_at_intervals(monitor, clock, [0.1] * 4)
        assert monitor.count == 5

    def test_reset_clears_beats_keeps_targets(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, min_target_rate=5.0, max_target_rate=5.0)
        beat_at_intervals(monitor, clock, [0.1, 0.1])
        monitor.reset()
        assert monitor.count == 0
        assert monitor.target_rate == 5.0


class TestRates:
    def test_instant_rate_is_reciprocal_of_last_interval(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock)
        beat_at_intervals(monitor, clock, [0.25])
        assert monitor.instant_rate() == pytest.approx(4.0)

    def test_rates_none_before_first_interval(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock)
        assert monitor.instant_rate() is None
        assert monitor.window_rate() is None
        assert monitor.global_rate() is None
        monitor.heartbeat()
        assert monitor.window_rate() is None

    def test_window_rate_uses_only_recent_intervals(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=2)
        beat_at_intervals(monitor, clock, [1.0, 0.5, 0.5])
        # Window holds the last two intervals (0.5, 0.5) -> 2 beats/s.
        assert monitor.window_rate() == pytest.approx(2.0)

    def test_global_rate_covers_whole_run(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock)
        beat_at_intervals(monitor, clock, [1.0, 0.5, 0.5])
        assert monitor.global_rate() == pytest.approx(3 / 2.0)

    def test_window_mean_interval_matches_paper_metric(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=20)
        beat_at_intervals(monitor, clock, [0.2] * 10)
        assert monitor.window_mean_interval() == pytest.approx(0.2)

    def test_zero_interval_rates_degrade_gracefully(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock)
        monitor.heartbeat()
        monitor.heartbeat()  # same timestamp
        assert monitor.instant_rate() is None
        assert monitor.window_rate() is None

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=40))
    def test_window_rate_bounded_by_extreme_intervals(self, intervals):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=20)
        beat_at_intervals(monitor, clock, intervals)
        window = intervals[-20:]
        rate = monitor.window_rate()
        assert 1.0 / max(window) - 1e-9 <= rate <= 1.0 / min(window) + 1e-9


class TestTargets:
    def test_target_rate_is_midpoint(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, min_target_rate=4.0, max_target_rate=6.0)
        assert monitor.target_rate == pytest.approx(5.0)

    def test_single_sided_targets(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, min_target_rate=4.0)
        assert monitor.target_rate == 4.0
        monitor.set_targets(None, 8.0)
        assert monitor.target_rate == 8.0

    def test_no_targets_means_none(self):
        assert HeartbeatMonitor(VirtualClock()).target_rate is None

    def test_invalid_targets_rejected(self):
        clock = VirtualClock()
        with pytest.raises(HeartbeatError):
            HeartbeatMonitor(clock, min_target_rate=-1.0)
        with pytest.raises(HeartbeatError):
            HeartbeatMonitor(clock, min_target_rate=5.0, max_target_rate=4.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(HeartbeatError):
            HeartbeatMonitor(VirtualClock(), window_size=0)


class TestRunningWindowSum:
    """The O(1) running-sum window statistics vs the naive recompute."""

    def test_exact_agreement_with_naive_sum_across_rollover(self):
        # Dyadic intervals are exactly representable, so the running
        # add/subtract sum must agree bit-for-bit with a fresh sum()
        # at every beat — including well past window rollover.
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=5)
        intervals = [(1 + (i * 7) % 13) / 64.0 for i in range(40)]
        monitor.heartbeat()
        for interval in intervals:
            clock.advance(interval)
            monitor.heartbeat()
            naive_total = sum(monitor._intervals)
            naive_count = len(monitor._intervals)
            assert monitor.window_rate() == naive_count / naive_total
            assert monitor.window_mean_interval() == naive_total / naive_count

    def test_exact_agreement_after_reset(self):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=4)
        beat_at_intervals(monitor, clock, [0.25, 0.5, 0.125, 0.25, 0.5])
        monitor.reset()
        assert monitor.window_rate() is None
        assert monitor.window_mean_interval() is None
        beat_at_intervals(monitor, clock, [0.5, 0.25])
        assert monitor.window_rate() == 2 / 0.75
        assert monitor.window_mean_interval() == 0.75 / 2

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=200
        )
    )
    def test_running_sum_tracks_naive_sum_for_arbitrary_floats(self, intervals):
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=20)
        beat_at_intervals(monitor, clock, intervals)
        naive = sum(monitor._intervals)
        # Running add/subtract can drift from the naive sum by a few
        # ulps of the *largest* window sum seen, so tolerance is scaled
        # generously rather than exact here (exactness for representable
        # values is pinned by the dyadic tests above).
        assert monitor.window_rate() == pytest.approx(
            len(monitor._intervals) / naive, rel=1e-7
        )
        assert monitor.window_mean_interval() == pytest.approx(
            naive / len(monitor._intervals), rel=1e-7
        )
