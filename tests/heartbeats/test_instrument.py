"""Unit tests for automatic heartbeat-site selection."""

import pytest

from repro.heartbeats.instrument import (
    InstrumentationError,
    choose_heartbeat_section,
    profile_sections,
)


class TestProfileSections:
    def test_aggregates_entries_and_work(self):
        events = [("main", 10.0), ("main", 20.0), ("startup", 5.0)]
        profiles = {p.section: p for p in profile_sections(events)}
        assert profiles["main"].entries == 2
        assert profiles["main"].total_work == 30.0
        assert profiles["startup"].entries == 1

    def test_nested_work_rolls_up_to_parent(self):
        events = [("main/me", 10.0), ("main/dct", 5.0), ("main", 1.0)]
        profiles = {p.section: p for p in profile_sections(events)}
        assert profiles["main"].total_work == 16.0
        assert profiles["main/me"].total_work == 10.0

    def test_entries_do_not_roll_up(self):
        events = [("main/me", 10.0), ("main/me", 10.0)]
        profiles = {p.section: p for p in profile_sections(events)}
        assert profiles["main/me"].entries == 2
        assert profiles["main"].entries == 0

    def test_negative_work_rejected(self):
        with pytest.raises(InstrumentationError):
            profile_sections([("main", -1.0)])

    def test_empty_events_yield_no_profiles(self):
        assert profile_sections([]) == []


class TestChooseHeartbeatSection:
    def test_picks_dominant_repeated_section(self):
        """The most time-consuming loop gets the heartbeat (Section 2.3.1)."""
        events = [("startup", 100.0)] + [("main", 30.0)] * 10 + [("io", 1.0)] * 10
        profiles = profile_sections(events)
        assert choose_heartbeat_section(profiles) == "main"

    def test_straight_line_startup_never_chosen(self):
        """A one-shot section is not a loop, however expensive."""
        events = [("startup", 1e9)] + [("main", 1.0)] * 5
        profiles = profile_sections(events)
        assert choose_heartbeat_section(profiles) == "main"

    def test_outermost_wins_ties(self):
        """When nested work dominates, beat at the top of the outer loop."""
        events = [("main/kernel", 50.0)] * 4 + [("main", 0.0)] * 4
        profiles = profile_sections(events)
        assert choose_heartbeat_section(profiles) == "main"

    def test_no_repeated_section_is_an_error(self):
        profiles = profile_sections([("startup", 5.0)])
        with pytest.raises(InstrumentationError):
            choose_heartbeat_section(profiles)

    def test_min_entries_threshold_respected(self):
        events = [("a", 10.0)] * 2 + [("b", 1.0)] * 5
        profiles = profile_sections(events)
        assert choose_heartbeat_section(profiles, min_entries=3) == "b"
