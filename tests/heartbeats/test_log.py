"""Tests for heartbeat log export/import."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.hardware.clock import VirtualClock
from repro.heartbeats.api import HeartbeatMonitor
from repro.heartbeats.log import LogFormatError, read_log, write_log


def monitor_with_intervals(intervals):
    clock = VirtualClock()
    monitor = HeartbeatMonitor(clock, window_size=4)
    monitor.heartbeat()
    for interval in intervals:
        clock.advance(interval)
        monitor.heartbeat()
    return monitor


class TestRoundTrip:
    def test_writes_one_row_per_beat(self):
        monitor = monitor_with_intervals([0.5, 0.5, 0.25])
        stream = io.StringIO()
        assert write_log(monitor, stream) == 4

    def test_roundtrip_preserves_beats_and_timestamps(self):
        monitor = monitor_with_intervals([0.5, 0.25, 1.0])
        stream = io.StringIO()
        write_log(monitor, stream)
        stream.seek(0)
        rows = read_log(stream)
        assert [r.beat for r in rows] == [0, 1, 2, 3]
        assert rows[1].timestamp == pytest.approx(0.5)
        assert rows[3].timestamp == pytest.approx(1.75)

    def test_rates_match_online_view(self):
        monitor = monitor_with_intervals([0.5, 0.25])
        stream = io.StringIO()
        write_log(monitor, stream)
        stream.seek(0)
        rows = read_log(stream)
        assert rows[0].instant_rate is None
        assert rows[1].instant_rate == pytest.approx(2.0)
        assert rows[2].instant_rate == pytest.approx(4.0)
        assert rows[2].global_rate == pytest.approx(2 / 0.75)

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=25
        )
    )
    def test_roundtrip_property(self, intervals):
        monitor = monitor_with_intervals(intervals)
        stream = io.StringIO()
        count = write_log(monitor, stream)
        stream.seek(0)
        rows = read_log(stream)
        assert len(rows) == count == len(intervals) + 1
        times = [r.timestamp for r in rows]
        assert times == sorted(times)


class TestParsing:
    def test_missing_header_rejected(self):
        with pytest.raises(LogFormatError):
            read_log(io.StringIO("1\t2\t3\t4\t5\n"))

    def test_wrong_field_count_rejected(self):
        stream = io.StringIO(
            "beat\ttimestamp\tinstant_rate\twindow_rate\tglobal_rate\n1\t2\n"
        )
        with pytest.raises(LogFormatError):
            read_log(stream)

    def test_bad_rate_field_rejected(self):
        stream = io.StringIO(
            "beat\ttimestamp\tinstant_rate\twindow_rate\tglobal_rate\n"
            "0\t0.0\txyz\t-\t-\n"
        )
        with pytest.raises(LogFormatError):
            read_log(stream)

    def test_empty_log_rejected(self):
        with pytest.raises(LogFormatError):
            read_log(io.StringIO(""))
